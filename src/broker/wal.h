// Durable per-broker routing state: a write-ahead log of subscription
// dispositions plus periodic compacted snapshots, the persistence layer the
// fault-tolerant broker network recovers from.
//
// What is logged: not the covering *decisions* but their *dispositions* —
// for a subscribe, the routing-table entry plus the exact set of links the
// subscription was forwarded (i.e. inserted into the link shard) on; for an
// unsubscribe, the links it was withdrawn from plus every (link, id, body)
// re-forward the withdrawal uncovered. Replaying a record is therefore a
// pure state mutation (broker::apply_replay): no covering check re-runs, no
// metrics move, and the rebuilt broker is state-identical to one that never
// crashed (pinned by routing_table::operator== and forwarded_ids equality
// in tests/broker/broker_recovery_test.cc).
//
// Idempotency keys: every record carries the op-scoped channel position
// (op, from, seq) it was applied at. The fault engine rebuilds its
// duplicate-suppression state from these keys after a crash, which is what
// makes "WAL-append before ack" turn at-least-once message delivery into
// exactly-once state application (docs/ARCHITECTURE.md, fault model). The
// TCP daemon (broker/transport.h) does the same over real sockets.
// event_receipt records exist only for this: events mutate no routing
// state, but their channel position must survive a crash so retransmitted
// (already-processed) events are suppressed instead of re-delivered.
//
// On-disk format (wal_store holds opaque bytes; both stores are durable on
// return from append/replace — to the OS always, to the *platter* only with
// wal_options::fsync_on_append):
//
//   log      := record*                   (append-only; compacted by snapshot)
//   record   := len:u32le  fnv1a64(payload):u64le  payload[len]
//   snapstore:= snapframe [auxframe]      (replaced atomically as one blob)
//
// The framing discipline is shared with the TCP wire protocol
// (broker/codec.h). A torn tail — a final record whose length header,
// checksum, or payload was cut by a crash mid-append — is tolerated:
// recovery applies every intact prefix record and reports the dropped bytes
// (recovery::torn_bytes). Payloads are varint/zigzag coded (LEB128).
//
// The snapshot store holds one checksummed broker_snapshot (routing table +
// per-link forwarded sets) plus an optional opaque aux frame (the daemon
// persists its in-flight duplicate-suppression keys there, so compaction
// cannot widen the exactly-once window); write_snapshot replaces both
// atomically and truncates the log, bounding replay time and WAL size.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "broker/routing_table.h"
#include "pubsub/subscription.h"

namespace subcover {

// Recovery found a corrupt snapshot or an internally inconsistent store
// (torn *tails* are tolerated and reported, not thrown), or a directory
// store could not be created, opened, or locked — the message names the
// offending path.
struct wal_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Durability policy for directory-backed stores.
struct wal_options {
  // fsync(2) the log file after every record append, fsync the snapshot
  // temp file before its rename and the directory after it. Off = durable
  // to the OS page cache (survives SIGKILL of the process, not power loss);
  // on = a real crash-durability guarantee at per-record fsync cost. The
  // recovered bytes are identical either way (pinned by
  // tests/broker/wal_test.cc).
  bool fsync_on_append = false;
};

// One logged disposition. `op`/`from`/`seq` form the idempotency key: the
// fault engine's per-operation channel position at which this record was
// applied (from == kLocalLink for client-originated messages).
struct wal_record {
  enum class kind : std::uint8_t { subscribe = 1, unsubscribe = 2, event_receipt = 3 };
  kind k = kind::subscribe;
  std::uint64_t op = 0;
  int from = kLocalLink;
  std::uint64_t seq = 0;
  sub_id id = 0;                    // subscribe / unsubscribe
  subscription body;                // subscribe
  std::vector<int> forwarded_links;  // subscribe: links the body was inserted on
  std::vector<int> withdrawn_links;  // unsubscribe: links the id was withdrawn from
  // unsubscribe: re-forwards the withdrawal uncovered, as (link, (id, body)).
  std::vector<std::pair<int, std::pair<sub_id, subscription>>> reforwards;

  friend bool operator==(const wal_record&, const wal_record&) = default;
};

// Full routing state of one broker at a checkpoint: per-link routing-table
// entries and per-link forwarded sets, ids ascending within each link.
struct broker_snapshot {
  std::map<int, std::vector<std::pair<sub_id, subscription>>> routing;
  std::map<int, std::vector<std::pair<sub_id, subscription>>> forwarded;

  friend bool operator==(const broker_snapshot&, const broker_snapshot&) = default;
};

// Durable byte storage for one log or snapshot. Implementations must make
// append/replace durable before returning (the fault model's crashes never
// lose acknowledged writes; a crash *during* the final append is the torn
// tail recovery tolerates).
class wal_store {
 public:
  virtual ~wal_store() = default;
  virtual void append(const std::vector<std::uint8_t>& bytes) = 0;
  virtual void replace(const std::vector<std::uint8_t>& bytes) = 0;
  [[nodiscard]] virtual std::vector<std::uint8_t> read_all() const = 0;
  [[nodiscard]] virtual std::uint64_t size() const = 0;
};

// In-memory store: the fault-injection engine's default (durability is
// simulated — the store lives in the network, outside the crashing broker).
class memory_wal_store final : public wal_store {
 public:
  void append(const std::vector<std::uint8_t>& bytes) override;
  void replace(const std::vector<std::uint8_t>& bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read_all() const override;
  [[nodiscard]] std::uint64_t size() const override { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// File-backed store: append opens O_APPEND and writes the whole record in
// one write(2); replace writes a sibling temp file and renames over the
// target, so a crash mid-replace leaves either the old or the new content,
// never a mix. With wal_options::fsync_on_append the record (and, for
// replace, the temp file and then the directory entry) is fsynced before
// returning.
class file_wal_store final : public wal_store {
 public:
  explicit file_wal_store(std::string path, wal_options options = {});
  void append(const std::vector<std::uint8_t>& bytes) override;
  void replace(const std::vector<std::uint8_t>& bytes) override;
  [[nodiscard]] std::vector<std::uint8_t> read_all() const override;
  [[nodiscard]] std::uint64_t size() const override;

 private:
  std::string path_;
  wal_options options_;
};

// RAII holder of an flock(2)-ed file descriptor: the broker_wal directory
// lock. The kernel releases the lock when the descriptor closes — including
// on SIGKILL — so a crashed daemon never wedges its own restart, while a
// *live* second opener of the same directory is rejected.
class file_lock {
 public:
  file_lock() = default;
  explicit file_lock(int fd) : fd_(fd) {}
  file_lock(file_lock&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  file_lock& operator=(file_lock&& o) noexcept;
  file_lock(const file_lock&) = delete;
  file_lock& operator=(const file_lock&) = delete;
  ~file_lock();

 private:
  int fd_ = -1;
};

// One broker's durable state: a snapshot store plus an append-only record
// log. Not thread-safe; driven by the single-threaded fault engine, the
// daemon's event loop, or a test — one call at a time.
class broker_wal {
 public:
  // In-memory stores (the fault engine's configuration).
  broker_wal();
  // Caller-chosen stores; both required.
  broker_wal(std::unique_ptr<wal_store> snapshot_store, std::unique_ptr<wal_store> log_store);
  // File-backed stores <dir>/broker-<id>.snap and <dir>/broker-<id>.log.
  // Creates `dir` (and parents) if missing, then takes an exclusive
  // <dir>/broker-<id>.lock flock held for the returned object's lifetime.
  // Throws wal_error naming the offending path if the directory cannot be
  // created or the WAL is already locked by a live process.
  static broker_wal in_directory(const std::string& dir, int broker_id,
                                 wal_options options = {});

  // Appends one framed record to the log, durably.
  void append(const wal_record& r);
  // Replaces the snapshot and truncates the log (compaction). Everything the
  // log's records built is assumed folded into `snap`. `aux` is an opaque
  // consumer blob stored (checksummed) beside the snapshot and handed back
  // by recover(); empty = no aux frame, byte-identical to the pre-aux
  // format.
  void write_snapshot(const broker_snapshot& snap, const std::vector<std::uint8_t>& aux = {});

  struct recovery {
    broker_snapshot snapshot;
    std::vector<std::uint8_t> aux;    // write_snapshot's aux blob, or empty
    std::vector<wal_record> records;  // intact log records, append order
    std::uint64_t torn_bytes = 0;     // trailing log bytes dropped as torn
  };
  // Reads snapshot + log back. Tolerates a torn final record (reported in
  // torn_bytes); throws wal_error on a corrupt snapshot or a corrupt
  // non-tail region that cannot be attributed to a torn append.
  [[nodiscard]] recovery recover() const;

  // Total bytes made durable through this object (records + snapshots) —
  // the network_metrics::wal_bytes feed.
  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_appended_; }
  // Records appended since the last snapshot (checkpoint-policy input).
  [[nodiscard]] std::uint64_t records_since_snapshot() const { return records_since_snapshot_; }

  [[nodiscard]] wal_store& log_store() { return *log_; }
  [[nodiscard]] wal_store& snapshot_store() { return *snapshot_; }

 private:
  std::unique_ptr<wal_store> snapshot_;
  std::unique_ptr<wal_store> log_;
  file_lock lock_;  // held iff built by in_directory
  std::uint64_t bytes_appended_ = 0;
  std::uint64_t records_since_snapshot_ = 0;
};

// Codec internals, exposed for tests (round-trip and torn-frame property
// tests) and for the fault engine's size accounting.
std::vector<std::uint8_t> encode_record(const wal_record& r);
std::vector<std::uint8_t> encode_snapshot(const broker_snapshot& s);

}  // namespace subcover
