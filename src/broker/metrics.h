// Network-wide counters: the quantities the paper's motivation is about
// (subscription traffic and routing-table size) plus event traffic and
// covering-check cost.
#pragma once

#include <cstdint>
#include <string>

namespace subcover {

struct network_metrics {
  // Broker-to-broker subscription forwards (what covering suppresses).
  std::uint64_t subscription_messages = 0;
  std::uint64_t unsubscription_messages = 0;
  // Subscriptions re-forwarded after an uncovering unsubscription.
  std::uint64_t reforwards = 0;
  // Broker-to-broker event forwards.
  std::uint64_t event_messages = 0;
  // Events handed to local subscribers.
  std::uint64_t deliveries = 0;
  // Covering-detection calls and outcomes during propagation.
  std::uint64_t covering_checks = 0;
  std::uint64_t covering_hits = 0;
  std::uint64_t covering_check_ns = 0;
  // Aggregated SFC-array probe work behind those checks (query_stats):
  // logical runs probed (the paper's cost measure), and how they were
  // physically executed — fresh descents vs probes resumed inside a batched
  // frontier sweep. Zero for non-SFC covering indexes.
  std::uint64_t covering_runs_probed = 0;
  std::uint64_t covering_probes_restarted = 0;
  std::uint64_t covering_probes_resumed = 0;
  // Cold-tier probe work behind those checks (query_stats tier_* fields;
  // zero unless the covering indexes enable hot/cold tiering).
  std::uint64_t covering_tier_cold_probes = 0;
  std::uint64_t covering_tier_summary_answers = 0;
  std::uint64_t covering_tier_blocks_decoded = 0;
  std::uint64_t covering_tier_cold_hits = 0;
  // Deferred-erase maintenance work behind the covering indexes
  // (query_stats maint_* fields; zero for in-place-erase backends or with
  // eager compaction). Physical counters: they move with the compaction
  // policy and with crash-recovery index rebuilds, so they are excluded
  // from same_counters like the fault-transport set below.
  std::uint64_t covering_maint_tombstones = 0;
  std::uint64_t covering_maint_purged = 0;
  std::uint64_t covering_maint_compactions = 0;
  // Fault-injection engine accounting (zero outside faults mode). These are
  // *transport* counters — retransmissions, suppressed duplicates, broker
  // crash-recoveries, durable bytes written — and are deliberately excluded
  // from same_counters: the logical counters above must match deterministic
  // mode exactly under any fault schedule, while these describe the fault
  // schedule itself.
  std::uint64_t retries = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t wal_bytes = 0;
  // TCP transport accounting (zero outside the socket daemon; broker/
  // transport.h). Physical counters like the fault-transport set above —
  // they describe what the OS and the network did to the byte stream, not
  // the logical computation — so same_counters excludes them too.
  std::uint64_t reconnects = 0;
  std::uint64_t heartbeats_missed = 0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t partial_writes = 0;

  void reset_traffic() {
    event_messages = 0;
    deliveries = 0;
  }

  // Field-wise sum: how the parallel network folds its per-broker
  // accumulators into the network-wide totals. Because every increment of a
  // run lands in exactly one accumulator and addition commutes, the folded
  // totals are independent of worker count and scheduling.
  network_metrics& operator+=(const network_metrics& o);

  [[nodiscard]] std::string to_string() const;
};

// True when every deterministic logical counter matches. covering_check_ns
// is excluded (wall-clock timer readings differ run to run even on the
// byte-identical sequential path), as are the maintenance counters
// (covering_maint_* — physical tombstone/compaction work that moves with
// crash-recovery rebuilds) and the fault-transport counters
// (retries, duplicates_suppressed, recoveries, wal_bytes — they describe
// the injected fault schedule, not the logical computation) and the TCP
// physical counters (reconnects, heartbeats_missed, bytes_on_wire,
// partial_writes — they describe what the OS did to the stream). This is the
// comparison the deterministic-vs-parallel and deterministic-vs-faults
// equivalence tests pin.
[[nodiscard]] bool same_counters(const network_metrics& a, const network_metrics& b);

}  // namespace subcover
