// In-process simulation of a broker tree running covering-optimized
// subscription propagation and reverse-path event routing, with three
// execution engines (a fourth — real TCP sockets between one OS process
// per broker, byte-identical converged state — lives in
// broker/transport.h as the standalone broker_daemon):
//
//   * Deterministic mode (workers == 0, the default): messages between
//     brokers are processed from a single FIFO queue until quiescence on the
//     calling thread — byte-identical to the original sequential simulation
//     (same message order, same delivery order, same metrics).
//
//   * Parallel mode (workers >= 1): an async message loop over a fixed
//     worker_pool. Every broker owns an MPSC inbox; a broker with pending
//     messages is scheduled onto a worker, drains its inbox in FIFO order,
//     and re-enqueues the resulting forwards/deliveries onto its neighbors'
//     inboxes. Within one broker, the per-outgoing-link covering shards fan
//     out across the pool (broker::handle_*_parallel). Each subscribe /
//     unsubscribe / publish call still runs to quiescence before returning.
//
//   * Faults mode (options.faults set; requires workers == 0): inter-broker
//     messages travel through a seeded deterministic fault fabric — drop,
//     duplicate, delay/reorder, broker crash-restart-from-WAL — with acks,
//     bounded retransmission, and idempotent handling rebuilding exactly
//     the deterministic-mode final state on top (broker/fault_engine.h).
//
// Parallel mode may reorder message processing across brokers, but on the
// acyclic overlay every broker receives all of an operation's messages from
// its unique neighbor toward the origin, in that neighbor's emission order —
// so each broker consumes an identical message sequence under any schedule,
// and the final routing tables, forwarded sets, delivered ids, and every
// metric total are identical to deterministic mode for every worker count
// (pinned by tests/broker/network_test.cc). Only wall-clock interleaving
// and the covering_check_ns sum (a timer, not a counter) vary.
//
// The equivalence contract includes operations whose broker handlers throw:
// every engine catches at its message-processing boundary (the sequential
// FIFO pop, the parallel inbox drain), skips only the failing message's
// forwards, completes every other in-flight message to quiescence, and
// rethrows the first error to the caller. Within a broker, the per-shard
// fan-out attempts every shard even when one throws (the serial loop
// matches run_batch's attempt-every-index contract) and the parallel
// handlers fold their per-shard metric deltas before rethrowing — so the
// post-throw routing tables, forwarded sets, and metric totals are valid,
// deterministic, and identical across engines and worker counts (which
// failure is reported first is the only scheduling-dependent part).
//
// The simulation preserves exactly the metrics the paper's motivation
// concerns: subscription messages, routing table sizes, event traffic, and
// delivery completeness.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "broker/broker.h"
#include "broker/fault_engine.h"
#include "broker/topology.h"

namespace subcover {

struct network_options {
  bool use_covering = true;
  double epsilon = 0.0;
  // Factory for the per-link covering indexes; defaults to the paper's
  // SFC index (Z curve + skip list).
  covering_index_factory factory;
  // 0 = deterministic sequential FIFO (the reference engine). >= 1 = async
  // message loop on a worker pool of this size; covering checks overlap
  // across links and brokers. Final state and metric totals are identical
  // either way (see header comment).
  int workers = 0;
  // Set = faults mode: inter-broker messages travel through the seeded
  // fault-injection fabric (broker/fault_engine.h) with per-broker WALs and
  // crash recovery. Requires workers == 0 (the fabric is its own single-
  // threaded virtual-time scheduler). Unset = the two engines above run
  // byte-for-byte as before.
  std::optional<fault_options> faults;
};

class network {
 public:
  network(topology t, schema s, network_options options = {});
  ~network();
  network(const network&) = delete;
  network& operator=(const network&) = delete;

  // Registers a subscription for a client at `broker_id`; propagates to
  // quiescence and returns the assigned subscription id.
  sub_id subscribe(int broker_id, const subscription& s);
  // Withdraws a subscription; returns false if unknown.
  bool unsubscribe(sub_id id);
  // Publishes at `broker_id`; returns the ids of subscriptions that received
  // the event, sorted ascending.
  std::vector<sub_id> publish(int broker_id, const event& e);

  // Ground truth: ids of all active subscriptions matching e, regardless of
  // routing (what a correct network must deliver to).
  [[nodiscard]] std::vector<sub_id> expected_recipients(const event& e) const;

  [[nodiscard]] const network_metrics& metrics() const { return metrics_; }
  network_metrics& mutable_metrics() { return metrics_; }
  // Sum of routing-table entries over all brokers — the size metric covering
  // is meant to reduce.
  [[nodiscard]] std::size_t total_routing_entries() const;
  [[nodiscard]] int broker_count() const { return topology_.size(); }
  [[nodiscard]] const broker& broker_at(int id) const;
  [[nodiscard]] std::size_t active_subscriptions() const { return owners_.size(); }
  [[nodiscard]] std::optional<int> owner_broker(sub_id id) const;
  [[nodiscard]] const schema& message_schema() const { return schema_; }
  [[nodiscard]] int workers() const { return options_.workers; }

  // Faults mode only (throws std::logic_error otherwise): the broker's
  // durable write-ahead log, for inspection.
  [[nodiscard]] broker_wal& wal_of(int broker_id);
  // Faults mode only: crash-between-operations — discards the broker's
  // in-memory routing state and rebuilds it from its WAL (counted in
  // metrics().recoveries). Returns the number of log records replayed.
  std::size_t recover_broker(int broker_id);

 private:
  struct sub_record {
    int broker;
    subscription s;
  };
  // The parallel engine (worker pool, per-broker inboxes, per-broker metric
  // accumulators and delivery buffers). Null in deterministic mode.
  struct async_state;
  struct net_msg;

  // Enqueues one initial message and blocks until the network is quiescent,
  // then folds the per-broker metric accumulators into metrics_.
  void run_async(int target_broker, net_msg msg);

  topology topology_;
  schema schema_;
  network_options options_;
  std::vector<broker> brokers_;
  std::map<sub_id, sub_record> owners_;
  network_metrics metrics_;
  sub_id next_id_ = 1;
  std::unique_ptr<async_state> async_;
  // The fault-injection executor; null unless options_.faults is set.
  std::unique_ptr<fault_engine> faults_;
};

}  // namespace subcover
