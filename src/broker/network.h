// Deterministic in-process simulation of a broker tree running covering-
// optimized subscription propagation and reverse-path event routing.
//
// Messages between brokers are processed from a FIFO queue until quiescence,
// so every subscribe/publish call returns with the network in a stable
// state. The simulation preserves exactly the metrics the paper's motivation
// concerns: subscription messages, routing table sizes, event traffic, and
// delivery completeness.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "broker/broker.h"
#include "broker/topology.h"

namespace subcover {

struct network_options {
  bool use_covering = true;
  double epsilon = 0.0;
  // Factory for the per-link covering indexes; defaults to the paper's
  // SFC index (Z curve + skip list).
  covering_index_factory factory;
};

class network {
 public:
  network(topology t, schema s, network_options options = {});

  // Registers a subscription for a client at `broker_id`; propagates to
  // quiescence and returns the assigned subscription id.
  sub_id subscribe(int broker_id, const subscription& s);
  // Withdraws a subscription; returns false if unknown.
  bool unsubscribe(sub_id id);
  // Publishes at `broker_id`; returns the ids of subscriptions that received
  // the event, sorted ascending.
  std::vector<sub_id> publish(int broker_id, const event& e);

  // Ground truth: ids of all active subscriptions matching e, regardless of
  // routing (what a correct network must deliver to).
  [[nodiscard]] std::vector<sub_id> expected_recipients(const event& e) const;

  [[nodiscard]] const network_metrics& metrics() const { return metrics_; }
  network_metrics& mutable_metrics() { return metrics_; }
  // Sum of routing-table entries over all brokers — the size metric covering
  // is meant to reduce.
  [[nodiscard]] std::size_t total_routing_entries() const;
  [[nodiscard]] int broker_count() const { return topology_.size(); }
  [[nodiscard]] const broker& broker_at(int id) const;
  [[nodiscard]] std::size_t active_subscriptions() const { return owners_.size(); }
  [[nodiscard]] std::optional<int> owner_broker(sub_id id) const;
  [[nodiscard]] const schema& message_schema() const { return schema_; }

 private:
  struct sub_record {
    int broker;
    subscription s;
  };

  topology topology_;
  schema schema_;
  network_options options_;
  std::vector<broker> brokers_;
  std::map<sub_id, sub_record> owners_;
  network_metrics metrics_;
  sub_id next_id_ = 1;
};

}  // namespace subcover
