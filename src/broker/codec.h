// Shared byte-level codec for the broker's durable and on-wire formats.
//
// The write-ahead log (broker/wal.h) and the TCP wire protocol
// (broker/wire.h) deliberately share one framing discipline:
//
//   frame   := len:u32le  fnv1a64(payload):u64le  payload[len]
//   payload := LEB128 varints (zigzag for signed), gap-coded ranges
//
// A torn frame — a length header, checksum, or payload cut mid-write — is
// detectable at any byte boundary, which is what lets WAL recovery keep the
// intact prefix and lets the transport resynchronize a stream by dropping
// the connection instead of guessing where the next frame starts.
//
// The reader is templated on the error type so each consumer surfaces its
// own exception (wal_error for durable state, wire_error for the
// transport) from the same decode paths.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "covering/covering_index.h"  // sub_id
#include "pubsub/subscription.h"

namespace subcover::codec {

// --- varint / zigzag ---------------------------------------------------------

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

inline std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

inline void put_signed(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_varint(out, zigzag(v));
}

// Bounded reader over a decoded payload. Every decode failure throws the
// consumer's error type; frame checksums make payload-level corruption
// unreachable in practice, but a wrong-version writer must fail loudly, not
// read garbage.
template <class Error>
struct basic_byte_reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  [[nodiscard]] bool done() const { return p == end; }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (p == end || shift > 63) throw Error("codec: truncated varint");
      const std::uint8_t b = *p++;
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }
  std::int64_t signed_varint() { return unzigzag(varint()); }
  std::uint8_t byte() {
    if (p == end) throw Error("codec: truncated payload");
    return *p++;
  }
};

// --- frame checksum and fixed-width fields -----------------------------------

inline std::uint64_t fnv1a64(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64le(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

inline std::uint64_t read_u64le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

inline constexpr std::size_t kFrameHeader = 4 + 8;  // len + checksum

inline std::vector<std::uint8_t> frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeader + payload.size());
  put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  put_u64le(out, fnv1a64(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

// --- subscription ------------------------------------------------------------

inline void put_subscription(std::vector<std::uint8_t>& out, const subscription& s) {
  put_varint(out, static_cast<std::uint64_t>(s.attribute_count()));
  for (int i = 0; i < s.attribute_count(); ++i) {
    put_varint(out, s.range(i).lo);
    // Gap-code the closed range: hi >= lo always, and narrow constraints
    // (the common case) shrink to one-byte deltas.
    put_varint(out, s.range(i).hi - s.range(i).lo);
  }
}

template <class Error>
subscription read_subscription(basic_byte_reader<Error>& in) {
  const auto n = in.varint();
  if (n > 1024) throw Error("codec: absurd attribute count");
  std::vector<attr_range> ranges;
  ranges.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    attr_range r;
    r.lo = in.varint();
    r.hi = r.lo + in.varint();
    ranges.push_back(r);
  }
  // Bypass schema validation: the ranges were validated when first accepted,
  // and neither the WAL nor the wire stores the owner's schema.
  return subscription::from_raw_ranges(std::move(ranges));
}

inline void put_id_sub_list(std::vector<std::uint8_t>& out,
                            const std::vector<std::pair<sub_id, subscription>>& subs) {
  put_varint(out, subs.size());
  for (const auto& [id, s] : subs) {
    put_varint(out, id);
    put_subscription(out, s);
  }
}

template <class Error>
std::vector<std::pair<sub_id, subscription>> read_id_sub_list(basic_byte_reader<Error>& in) {
  const auto n = in.varint();
  std::vector<std::pair<sub_id, subscription>> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const sub_id id = in.varint();
    out.emplace_back(id, read_subscription(in));
  }
  return out;
}

}  // namespace subcover::codec
