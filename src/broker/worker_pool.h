// Fixed-size worker pool for the parallel broker network.
//
// Two primitives, matching the two grains of parallelism in the network:
//
//   * submit(job)           — fire-and-forget: the unit the async message
//                             loop schedules (one job = drain one broker's
//                             inbox to empty).
//   * run_batch(n, job)     — bounded fork-join: run job(0..n-1) where each
//                             index touches disjoint state (one per-link
//                             covering shard). The caller participates —
//                             it claims indexes itself while idle workers
//                             steal the rest — so run_batch never deadlocks
//                             even when every pool thread is already busy
//                             (including pool size 1, or a caller that is
//                             itself a pool worker). The call returns only
//                             after every index has fully executed.
//
// Scheduling is deliberately simple (one mutex-protected FIFO + condvar):
// the network simulation pushes thousands of coarse jobs per operation, not
// millions, and the covering checks inside each job dominate the cost. The
// pool makes no fairness or ordering promise across jobs; the broker
// network's determinism comes from per-broker FIFO inboxes, not from the
// pool (see docs/ARCHITECTURE.md, threading model).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace subcover {

class worker_pool {
 public:
  // Spawns `workers` threads (at least 1; the pool clamps). The pool is not
  // resizable: per-link shard ownership in the broker network is planned
  // against a fixed worker count.
  explicit worker_pool(int workers);
  // Drains nothing: outstanding submitted jobs are completed, then threads
  // join. Callers must not destroy the pool while a run_batch is blocked in
  // another thread.
  ~worker_pool();

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  // Enqueues a job for any worker. Safe from any thread, including pool
  // workers themselves (jobs that submit jobs). Returns false — and does
  // not enqueue — once destruction has begun: a job racing the destructor
  // is rejected instead of being queued behind the stop flag (where it
  // might run on a pool whose owner is mid-teardown, or never run at all).
  [[nodiscard]] bool submit(std::function<void()> job);

  // Runs job(0), ..., job(n-1), each exactly once, and returns when all have
  // finished. The calling thread claims indexes in a loop; up to
  // min(size() - 1, n - 1) helper jobs are submitted so idle workers steal
  // the remainder. Indexes may execute in any order and concurrently; the
  // caller must ensure distinct indexes touch disjoint state. If jobs
  // throw, the batch still runs to completion (every index is attempted)
  // and the first captured exception is rethrown on the calling thread
  // after the join — a throwing job never terminates a pool worker or
  // deadlocks the batch.
  void run_batch(std::size_t n, const std::function<void(std::size_t)>& job);

 private:
  void worker_main();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace subcover
