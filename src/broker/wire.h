// Binary wire protocol for the TCP broker daemon (broker/transport.h).
//
// Every message travels as one frame in the WAL's framing discipline
// (broker/codec.h): [len:u32le][fnv1a64(payload):u64le][payload], payload
// varint/zigzag coded. Sharing the discipline buys the same property on the
// wire that it buys on disk: a torn or corrupted frame is *detected* at the
// receiver — length bound, then checksum — and the stream is resynchronized
// by dropping the connection and reconnecting (the sender replays unacked
// operations; per-(op,from,seq) dedup makes the replay idempotent), never
// by guessing where the next frame starts.
//
// Peer-to-peer messages (broker <-> broker):
//   hello       sender's broker id; first frame on every connection, both
//               directions. Anything else first is a protocol violation.
//   heartbeat   liveness probe; carries nothing.
//   subscribe / unsubscribe / publish
//               one routed operation step, keyed (op, seq): `op` is the
//               cluster-unique operation id, `seq` the sender-link channel
//               position — together with the receiving link they form the
//               WAL idempotency key (op, from, seq).
//   ack         subtree completion for (op, seq): the receiver has applied
//               the step AND collected acks from its own forwards.
//               `delivered` aggregates every local delivery in that subtree
//               (publish only), so the origin ends up with the cluster-wide
//               delivered set.
//
// Client messages (driver/supervisor <-> daemon):
//   client_subscribe / client_unsubscribe / client_publish
//               inject one operation at this broker (from = kLocalLink).
//   client_done operation finished cluster-wide: status, op id, and the
//               full sorted delivered set (publish) — byte-identical to
//               what the in-process deterministic engine returns.
//   client_dump / dump_reply
//               routing-state probe: encode_snapshot bytes + metrics.
//   client_shutdown
//               orderly daemon exit (checkpoint, close, stop).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "broker/metrics.h"
#include "broker/wal.h"  // broker_snapshot
#include "covering/covering_index.h"
#include "pubsub/subscription.h"

namespace subcover {

// A malformed frame or payload: bad checksum, over-length frame, unknown
// message type, truncated or trailing payload bytes. The transport's
// response is always the same — close the connection, resync by reconnect.
struct wire_error : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class msg_type : std::uint8_t {
  hello = 1,
  heartbeat = 2,
  subscribe = 3,
  unsubscribe = 4,
  publish = 5,
  ack = 6,
  client_subscribe = 7,
  client_unsubscribe = 8,
  client_publish = 9,
  client_done = 10,
  client_dump = 11,
  dump_reply = 12,
  client_shutdown = 13,
};

// One decoded message; which fields are meaningful depends on `type` (see
// the header comment). Unused fields encode as absent, not as zeroes.
struct wire_msg {
  msg_type type = msg_type::heartbeat;
  std::uint64_t op = 0;                // subscribe/unsubscribe/publish/ack/client_done
  std::uint64_t seq = 0;               // subscribe/unsubscribe/publish/ack
  int sender = 0;                      // hello: broker id
  sub_id id = 0;                       // (client_)subscribe / (client_)unsubscribe
  subscription body;                   // (client_)subscribe
  std::vector<std::uint64_t> values;   // (client_)publish: event values, schema order
  std::vector<sub_id> delivered;       // ack / client_done: delivered ids, ascending
  std::uint8_t status = 0;             // client_done: 0 = ok
  std::vector<std::uint8_t> snapshot;  // dump_reply: encode_snapshot bytes
  network_metrics metrics;             // dump_reply
};

// Payload bytes for one message (unframed).
[[nodiscard]] std::vector<std::uint8_t> encode_msg(const wire_msg& m);
// Decodes one payload; throws wire_error on anything malformed.
[[nodiscard]] wire_msg decode_msg(const std::uint8_t* p, std::size_t n);
// encode_msg wrapped in a codec frame — the bytes that go on the socket.
[[nodiscard]] std::vector<std::uint8_t> frame_msg(const wire_msg& m);

// Upper bound on a frame payload the decoder will accept. A length header
// above this is treated as corruption immediately (a torn length field can
// read as gigabytes — better to drop the connection than to buffer forever
// waiting for bytes that never come).
inline constexpr std::size_t kMaxWirePayload = std::size_t{1} << 24;  // 16 MiB

// Incremental reassembly of a frame stream: feed() whatever recv(2)
// returned, next() yields complete payloads in order. TCP guarantees the
// bytes arrive in order or not at all, so the only failure modes are a
// prefix that is not yet complete (next() returns nullopt — keep reading)
// and corruption (next() throws wire_error — drop the connection).
class frame_decoder {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  // Next complete, checksum-verified payload; nullopt if more bytes are
  // needed. Throws wire_error on an over-length header or checksum
  // mismatch; the decoder is then poisoned (every later call throws) —
  // matching the only sane recovery, which is a fresh connection with a
  // fresh decoder.
  std::optional<std::vector<std::uint8_t>> next();
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool poisoned_ = false;
};

}  // namespace subcover
