// Broker overlay topology. Distributed pub/sub systems (Siena, Gryphon,
// REBECA) route over an acyclic overlay; this class models an undirected
// tree of brokers and validates acyclicity/connectivity at construction.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace subcover {

class topology {
 public:
  // `n` brokers (ids 0..n-1) and exactly n-1 undirected edges forming a tree.
  // Throws std::invalid_argument otherwise.
  topology(int n, std::vector<std::pair<int, int>> edges);

  // A path 0-1-2-...-(n-1).
  static topology line(int n);
  // Broker 0 connected to all others.
  static topology star(int n);
  // Complete tree with the given fanout and depth (depth 0 = single root).
  static topology balanced_tree(int fanout, int depth);

  [[nodiscard]] int size() const { return static_cast<int>(adj_.size()); }
  [[nodiscard]] const std::vector<int>& neighbors(int node) const;
  // Unique tree path between two brokers, inclusive of both endpoints.
  [[nodiscard]] std::vector<int> path(int from, int to) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<int>> adj_;
};

}  // namespace subcover
