// Per-broker routing state: for every link (neighbor broker, or the local
// client port), the set of subscriptions received over that link. Events are
// forwarded toward a link iff some subscription received from it matches —
// the standard reverse-path content routing of Siena-style systems.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "covering/covering_index.h"
#include "pubsub/event.h"
#include "pubsub/subscription.h"

namespace subcover {

// Link id of the broker's local clients.
inline constexpr int kLocalLink = -1;

class routing_table {
 public:
  // Throws std::invalid_argument if the id is already present on the link.
  void add(int link, sub_id id, const subscription& s);
  bool remove(int link, sub_id id);

  [[nodiscard]] bool contains(int link, sub_id id) const;
  // Number of (link, subscription) entries — the table-size metric.
  [[nodiscard]] std::size_t total_entries() const;
  [[nodiscard]] std::size_t entries_on(int link) const;

  // Links (excluding `exclude_link`) holding at least one subscription that
  // matches the event.
  [[nodiscard]] std::vector<int> matching_links(const event& e, int exclude_link) const;
  // Ids of subscriptions on `link` matching the event (local delivery).
  [[nodiscard]] std::vector<sub_id> matching_subs(int link, const event& e) const;

  // All (id, subscription) pairs received over links other than `exclude`.
  [[nodiscard]] std::vector<std::pair<sub_id, subscription>> subs_not_from(int exclude) const;

  // Full export as link -> (id, subscription) pairs, ids ascending within
  // each link — the routing payload of a broker_snapshot (broker/wal.h).
  [[nodiscard]] std::map<int, std::vector<std::pair<sub_id, subscription>>> snapshot() const;

  // Estimated bytes the table owns: per-link and per-entry tree nodes plus
  // the subscription rectangle payloads.
  [[nodiscard]] std::size_t memory_footprint() const;

  // Full-state equality (same links, same ids, same subscription bodies) —
  // what the deterministic-vs-parallel network equivalence tests compare.
  friend bool operator==(const routing_table&, const routing_table&) = default;

 private:
  std::map<int, std::map<sub_id, subscription>> received_;
};

}  // namespace subcover
