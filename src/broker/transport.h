// TCP transport: the network's fourth execution engine. One OS process per
// broker (broker_daemon), real sockets between them, and the same logical
// machinery the fault engine proved out in simulation — WAL-append before
// ack, (op, from, seq) idempotency keys, duplicate suppression — now
// defending against what the OS actually does: partial writes, torn
// frames, peer death, and SIGKILL.
//
// Topology and roles. The overlay is the usual acyclic broker tree; each
// daemon knows its own id and its neighbors' addresses. The higher-id
// endpoint of every edge initiates the connection (no simultaneous-connect
// glare); the first frame each way is `hello` carrying the sender's broker
// id. Anything else first is a protocol violation — the connection is
// dropped. Clients (the workload driver, the supervisor) connect to any
// broker and speak the client_* half of the protocol (broker/wire.h).
//
// Reliability model — what replaces the fault engine's fabric:
//
//   * TCP gives per-connection ordered, gap-free delivery, so the
//     out-of-order buffering of the simulated fabric disappears: a data
//     message is either the next expected seq (fresh), an earlier seq
//     (duplicate — possible only via reconnect replay), or a protocol
//     violation.
//   * Every inter-broker data message sits in the sender's per-link
//     unacked ledger until its ack arrives. There is no retransmission
//     timer: TCP either delivers or the connection dies, and on every
//     (re)connect the whole ledger for that link is replayed in order.
//     Duplicates therefore arise only from reconnect replay, and the
//     receiver suppresses them by (op, from, seq).
//   * Acks cascade: a broker acks its parent for (op, seq) only after its
//     OWN forwards for the op are all acked, and the ack aggregates every
//     subscription id delivered in that subtree. The origin's client_done
//     thus carries the cluster-wide delivered set — byte-identical to the
//     in-process deterministic engine's publish() return — and cluster
//     quiescence needs no global coordinator.
//   * WAL-append before ack, exactly as in the fault engine. A restarted
//     daemon rebuilds its duplicate-suppression keys from the post-snapshot
//     log records plus the aux blob the previous incarnation stored beside
//     its snapshot (broker_wal::write_snapshot aux — so checkpoint
//     compaction cannot widen the exactly-once window).
//
// Crash recovery — the part the fault engine deliberately left out
// ("sender-side transport state lives below the crash line"). Here nothing
// lives below the crash line: SIGKILL takes the ledgers and op progress
// with it. Recovery is by deterministic re-emission:
//
//   * A duplicate data message whose record is still in the log replays
//     that record's emissions (subscribe: forwarded_links; unsubscribe:
//     withdrawals then reforwards, original order) with regenerated
//     per-op per-link seq numbers — which match the originals, because a
//     broker sends for an op only from its single process() of that op,
//     in deterministic order. Downstream brokers suppress what they
//     already applied and re-ack; fresh receivers just process.
//   * A duplicate publish re-runs handle_event (events mutate no routing
//     state and the cluster runs one operation at a time, so the recompute
//     sees the same routing tables) using the event payload carried by the
//     duplicate itself, re-emits, and re-aggregates the delivered set from
//     its children's re-acks — reconstructing the exact ack payload the
//     crash destroyed, recursively.
//   * A duplicate whose record was checkpointed away (its key lives in the
//     aux blob) means the subtree completed before the checkpoint:
//     subscribe/unsubscribe re-ack empty immediately; publish recomputes
//     as above.
//   * Records with from == kLocalLink (client-origin) are resumed
//     spontaneously at startup — their client is gone, so nobody would
//     ever retransmit them — driving any half-propagated client operation
//     to cluster-wide completion. (The client_done for such an orphaned
//     operation is dropped; the driver that never got it reconnects and
//     re-probes or re-sends.)
//
// Exactly-once applies to *state*; deliveries to local subscribers are
// at-least-once across client retries of an interrupted publish (the
// standard pub/sub contract). Duplicate-suppression keys are kept for the
// daemon's lifetime and persisted across checkpoints; a production
// implementation would prune them with completion watermarks — out of
// scope here and documented in docs/ARCHITECTURE.md.
//
// Liveness: peer connections heartbeat after heartbeat_ms of send
// idleness; rx silence past peer_timeout_ms counts heartbeats_missed,
// drops the connection, and (on the initiating side) schedules a seeded
// exponential-backoff reconnect. Physical counters (reconnects,
// heartbeats_missed, bytes_on_wire, partial_writes) land in
// network_metrics but are excluded from same_counters.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "broker/wal.h"
#include "broker/wire.h"
#include "util/random.h"

namespace subcover {

struct peer_addr {
  int id = 0;
  std::string host;
  int port = 0;
};

struct transport_options {
  int broker_id = 0;
  std::string listen_host = "127.0.0.1";
  int listen_port = 0;  // 0 = ephemeral (resolved port via listen_port())
  // A pre-bound, listening descriptor to adopt instead of binding
  // listen_host:listen_port. This is how the multi-process test gives a
  // SIGKILLed broker the *same* port back: the parent binds once and the
  // re-forked child inherits the fd.
  int listen_fd = -1;
  std::vector<peer_addr> peers;  // overlay neighbors
  std::string wal_dir;           // empty = in-memory WAL (no durability)
  wal_options wal;
  std::uint64_t seed = 1;  // reconnect-backoff jitter
  int heartbeat_ms = 500;
  int peer_timeout_ms = 2500;
  int connect_timeout_ms = 1000;
  int reconnect_base_ms = 25;
  int reconnect_cap_ms = 1600;
  std::uint64_t checkpoint_every = 64;  // records; 0 disables
  broker_options broker;
};

// One broker process: event loop, sockets, WAL, and the broker itself.
// Single-threaded; run() owns the calling thread until client_shutdown or
// stop(). step() exposes one poll iteration so in-process tests can
// interleave several daemons deterministically without threads.
class broker_daemon {
 public:
  broker_daemon(const schema& s, const covering_index_factory& factory,
                transport_options opts);
  ~broker_daemon();
  broker_daemon(const broker_daemon&) = delete;
  broker_daemon& operator=(const broker_daemon&) = delete;

  // The bound listening port (after construction resolves port 0).
  [[nodiscard]] int listen_port() const { return listen_port_; }
  // Poll loop until shutdown. `max_idle_ms` < 0 = forever.
  void run();
  // One poll iteration with the given timeout; returns false once
  // shutdown has been requested.
  bool step(int timeout_ms);
  void stop() { stopping_ = true; }

  [[nodiscard]] const network_metrics& metrics() const { return metrics_; }
  [[nodiscard]] const broker& state() const { return broker_; }

 private:
  struct conn;       // one socket: peer, client, or not-yet-identified
  struct op_state;   // one in-flight operation's ack bookkeeping
  struct ledger_entry {
    std::uint64_t op = 0;
    std::uint64_t seq = 0;
    wire_msg msg;
  };
  struct peer_slot {
    peer_addr addr;
    conn* c = nullptr;          // live identified connection, if any
    std::deque<ledger_entry> unacked;  // send order; replayed on reconnect
    int backoff_exp = 0;
    std::int64_t next_connect_ms = 0;  // earliest reconnect attempt
    bool ever_connected = false;
  };

  void open_listener();
  void poll_once(int timeout_ms);
  std::int64_t now_ms() const;
  void start_connects(std::int64_t now);
  void finish_connect(conn& c);
  void accept_ready();
  void read_ready(conn& c);
  void write_ready(conn& c);
  void close_conn(conn& c, const char* why);
  void identify_peer(conn& c, int peer_id);
  void queue_bytes(conn& c, const std::vector<std::uint8_t>& bytes);
  void send_to_peer(int peer_id, const wire_msg& m);
  void flush_ledger(peer_slot& p);
  void heartbeats(std::int64_t now);

  void handle_frame(conn& c, const std::vector<std::uint8_t>& payload);
  void handle_peer_msg(conn& c, const wire_msg& m);
  void handle_client_msg(conn& c, const wire_msg& m);
  void handle_data(int from, const wire_msg& m);
  void handle_ack(int from, const wire_msg& m);

  // Fresh processing of one data message (the fault engine's process()).
  void process_fresh(int from, const wire_msg& m, op_state& st);
  // Replay emissions for a duplicate (crash-recovery re-emission).
  void replay_record(const wal_record& r, op_state& st);
  void replay_publish(int from, const wire_msg& m, op_state& st);
  void emit_data(std::uint64_t op, int link, wire_msg m, op_state& st);
  void complete_op(std::uint64_t op, op_state& st);
  void note_applied(std::uint64_t op, int from, std::uint64_t seq);
  void maybe_checkpoint();
  std::vector<std::uint8_t> dedup_aux() const;
  void load_dedup_aux(const std::vector<std::uint8_t>& aux);
  void resume_client_ops();

  schema schema_;
  covering_index_factory factory_;
  transport_options opts_;
  broker_wal wal_;
  broker broker_;
  network_metrics metrics_;
  rng rng_;

  int listen_fd_ = -1;
  int listen_port_ = 0;
  bool stopping_ = false;
  std::vector<std::unique_ptr<conn>> conns_;
  std::map<int, peer_slot> peers_;  // by broker id

  std::uint64_t op_counter_ = 0;  // client ops originated here
  // Duplicate suppression: op -> (from -> next expected seq). Grows with
  // operation count (see header comment — lifetime-scoped by design).
  std::map<std::uint64_t, std::map<int, std::uint64_t>> applied_;
  // Post-snapshot records by op, for duplicate-replay; cleared at checkpoint.
  std::map<std::uint64_t, wal_record> records_;
  std::map<std::uint64_t, std::unique_ptr<op_state>> active_;
  // Per-op per-link send sequence counters (deterministically regenerated
  // after a crash — see header comment).
  std::map<std::uint64_t, std::map<int, std::uint64_t>> send_seq_;
};

// Blocking client used by drivers, tests, and the supervisor: connect to a
// daemon, inject client operations, await replies. Reconnects are the
// caller's policy (call connect() again).
class cluster_client {
 public:
  cluster_client() = default;
  ~cluster_client();
  cluster_client(const cluster_client&) = delete;
  cluster_client& operator=(const cluster_client&) = delete;

  // Connect with retry until `deadline_ms` elapses; throws wire_error on
  // failure. Safe to call on a dead client to reconnect.
  void connect(const std::string& host, int port, int deadline_ms);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  void send(const wire_msg& m);
  // Next reply frame; nullopt on timeout. Throws wire_error if the
  // connection died (caller reconnects).
  std::optional<wire_msg> recv(int timeout_ms);
  // send + recv of the matching reply; throws wire_error on timeout/death.
  wire_msg request(const wire_msg& m, int timeout_ms);

 private:
  int fd_ = -1;
  frame_decoder decoder_;
};

}  // namespace subcover
