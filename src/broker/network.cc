#include "broker/network.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <stdexcept>

#include "broker/worker_pool.h"
#include "covering/sfc_covering_index.h"
#include "pubsub/matching.h"
#include "util/check.h"

namespace subcover {

namespace {

covering_index_factory default_factory() {
  return [](const schema& s) { return std::make_unique<sfc_covering_index>(s); };
}

}  // namespace

// One broker-to-broker (or client-to-broker) message of the async loop.
// `ev` points into the publish() caller's frame, which outlives the
// operation's quiescence wait.
struct network::net_msg {
  enum class kind : std::uint8_t { subscribe, unsubscribe, publish };
  kind k;
  int from_link;
  sub_id id = 0;          // subscribe / unsubscribe
  subscription body;      // subscribe
  const event* ev = nullptr;  // publish
};

// The parallel engine. Brokers are actors: each owns an MPSC inbox and is
// scheduled onto the pool while its inbox is non-empty (the `scheduled`
// flag, flipped under the inbox mutex, guarantees at most one drain job per
// broker at a time — that serialization is what makes broker state safe
// without per-broker locks). Quiescence is an in-flight message count:
// every enqueue increments, every fully-processed message decrements, and
// the operation thread sleeps until it reaches zero. Workers write metrics
// and deliveries only into their current broker's slot, so the only shared
// mutable state is the queues and the counter.
struct network::async_state {
  async_state(int workers, std::size_t brokers)
      : inboxes(brokers),
        broker_metrics(brokers),
        broker_deliveries(brokers),
        pool(workers) {}

  struct inbox {
    std::mutex mu;
    std::deque<net_msg> q;
    bool scheduled = false;  // a drain job is queued or running
  };

  std::vector<inbox> inboxes;
  // Per-broker accumulators: a broker's drain job is the only writer of its
  // slot, and the quiescence wait orders the fold-up after every write.
  std::vector<network_metrics> broker_metrics;
  std::vector<std::vector<sub_id>> broker_deliveries;
  std::atomic<std::uint64_t> in_flight{0};
  std::mutex done_mu;
  std::condition_variable done_cv;
  // First exception a drain job caught from a broker handler (guarded by
  // done_mu); rethrown to the operation caller after quiescence. A handler
  // throw fails only its own message: the throw happens before the message
  // enqueues any output (broker handlers throw before their action is
  // acted on), so the failing message's subtree is skipped while every
  // other in-flight message still propagates to quiescence — mirroring the
  // sequential engine, which catches per message and finishes its FIFO.
  // Which failure is "first" is scheduling-dependent when several messages
  // throw, but the post-throw *state* is not: the set of skipped subtrees
  // is data-dependent, so tables, forwarded sets, and metric totals match
  // the sequential engine exactly (pinned by tests/broker/network_test.cc).
  std::exception_ptr first_error;
  network* net = nullptr;
  // Declared last so it is destroyed FIRST: ~worker_pool completes any
  // straggler drain job (one can outlive an operation's quiescence by the
  // few instructions between its final decrement and its empty-inbox check)
  // and joins every worker before the inboxes and accumulators above die.
  worker_pool pool;

  void enqueue(int b, net_msg msg) {
    in_flight.fetch_add(1);
    inbox& box = inboxes[static_cast<std::size_t>(b)];
    bool need_submit = false;
    {
      const std::lock_guard<std::mutex> lock(box.mu);
      box.q.push_back(std::move(msg));
      if (!box.scheduled) {
        box.scheduled = true;
        need_submit = true;
      }
    }
    // Rejection is only possible during pool teardown, when no operation
    // is in flight and the undrained inbox no longer matters.
    if (need_submit) (void)pool.submit([this, b] { drain(b); });
  }

  void drain(int b) {
    inbox& box = inboxes[static_cast<std::size_t>(b)];
    for (;;) {
      net_msg msg;
      {
        const std::lock_guard<std::mutex> lock(box.mu);
        if (box.q.empty()) {
          box.scheduled = false;
          return;
        }
        msg = std::move(box.q.front());
        box.q.pop_front();
      }
      try {
        process(b, msg);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(done_mu);
        if (!first_error) first_error = std::current_exception();
      }
      // The message's own decrement comes after its outputs' increments
      // (inside process), so in_flight can only reach zero at true
      // quiescence.
      if (in_flight.fetch_sub(1) == 1) {
        const std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }

  void process(int b, const net_msg& msg) {
    network_metrics& bm = broker_metrics[static_cast<std::size_t>(b)];
    broker& br = net->brokers_[static_cast<std::size_t>(b)];
    switch (msg.k) {
      case net_msg::kind::subscribe: {
        const auto action =
            br.handle_subscribe_parallel(msg.from_link, msg.id, msg.body, bm, pool);
        for (const int link : action.forward_links) {
          ++bm.subscription_messages;
          enqueue(link, net_msg{net_msg::kind::subscribe, b, msg.id, msg.body, nullptr});
        }
        break;
      }
      case net_msg::kind::unsubscribe: {
        const auto action = br.handle_unsubscribe_parallel(msg.from_link, msg.id, bm, pool);
        for (const int link : action.forward_links) {
          ++bm.unsubscription_messages;
          enqueue(link, net_msg{net_msg::kind::unsubscribe, b, msg.id, subscription{}, nullptr});
        }
        for (const auto& [link, sub_pair] : action.reforwards) {
          ++bm.subscription_messages;
          ++bm.reforwards;
          enqueue(link, net_msg{net_msg::kind::subscribe, b, sub_pair.first, sub_pair.second,
                                nullptr});
        }
        break;
      }
      case net_msg::kind::publish: {
        const auto action = br.handle_event(msg.from_link, *msg.ev);
        auto& del = broker_deliveries[static_cast<std::size_t>(b)];
        for (const sub_id id : action.local_deliveries) {
          del.push_back(id);
          ++bm.deliveries;
        }
        for (const int link : action.forward_links) {
          ++bm.event_messages;
          enqueue(link, net_msg{net_msg::kind::publish, b, 0, subscription{}, msg.ev});
        }
        break;
      }
    }
  }
};

network::network(topology t, schema s, network_options options)
    : topology_(std::move(t)), schema_(std::move(s)), options_(std::move(options)) {
  if (!options_.factory) options_.factory = default_factory();
  if (options_.workers < 0)
    throw std::invalid_argument("network: workers must be >= 0");
  broker_options bo;
  bo.use_covering = options_.use_covering;
  bo.epsilon = options_.epsilon;
  brokers_.reserve(static_cast<std::size_t>(topology_.size()));
  for (int i = 0; i < topology_.size(); ++i)
    brokers_.emplace_back(i, schema_, topology_.neighbors(i), options_.factory, bo);
  if (options_.faults.has_value()) {
    if (options_.workers != 0)
      throw std::invalid_argument(
          "network: faults mode requires workers == 0 (the fault fabric is its own "
          "single-threaded virtual-time scheduler)");
    faults_ = std::make_unique<fault_engine>(topology_, schema_, options_.factory, bo,
                                             *options_.faults, brokers_, metrics_);
  } else if (options_.workers >= 1) {
    async_ = std::make_unique<async_state>(options_.workers,
                                           static_cast<std::size_t>(topology_.size()));
    async_->net = this;
  }
}

network::~network() = default;

void network::run_async(int target_broker, net_msg msg) {
  async_state& as = *async_;
  as.enqueue(target_broker, std::move(msg));
  {
    std::unique_lock<std::mutex> lock(as.done_mu);
    as.done_cv.wait(lock, [&] { return as.in_flight.load() == 0; });
  }
  // Quiescent: every worker's slot writes happen-before the counter's final
  // decrement, which the wait above observed. Fold and reset the slots so
  // the next operation starts clean.
  for (auto& bm : as.broker_metrics) {
    metrics_ += bm;
    bm = network_metrics{};
  }
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(as.done_mu);
    error = as.first_error;
    as.first_error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

sub_id network::subscribe(int broker_id, const subscription& s) {
  if (broker_id < 0 || broker_id >= topology_.size())
    throw std::invalid_argument("network::subscribe: bad broker id");
  const sub_id id = next_id_++;
  owners_.emplace(id, sub_record{broker_id, s});

  if (faults_ != nullptr) {
    faults_->run_subscribe(broker_id, id, s);
    return id;
  }
  if (async_ != nullptr) {
    run_async(broker_id, net_msg{net_msg::kind::subscribe, kLocalLink, id, s, nullptr});
    return id;
  }

  struct pending {
    int broker;
    int from_link;
  };
  std::deque<pending> queue{{broker_id, kLocalLink}};
  std::exception_ptr first_error;
  while (!queue.empty()) {
    const auto [b, from] = queue.front();
    queue.pop_front();
    try {
      const auto action =
          brokers_[static_cast<std::size_t>(b)].handle_subscribe(from, id, s, metrics_);
      for (const int link : action.forward_links) {
        ++metrics_.subscription_messages;
        queue.push_back({link, b});
      }
    } catch (...) {
      // Fail this message only: skip its forwards, finish the rest of the
      // FIFO, surface the first error after quiescence (same contract as
      // the parallel engine's drain boundary — see network.h).
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return id;
}

bool network::unsubscribe(sub_id id) {
  const auto rec = owners_.find(id);
  if (rec == owners_.end()) return false;
  const int origin = rec->second.broker;
  owners_.erase(rec);

  if (faults_ != nullptr) {
    faults_->run_unsubscribe(origin, id);
    return true;
  }
  if (async_ != nullptr) {
    run_async(origin,
              net_msg{net_msg::kind::unsubscribe, kLocalLink, id, subscription{}, nullptr});
    return true;
  }

  struct pending {
    int broker;
    int from_link;
    bool is_unsub;          // unsubscription or a re-forwarded subscription
    sub_id sid;
    subscription body;      // used when !is_unsub
  };
  std::deque<pending> queue;
  queue.push_back({origin, kLocalLink, true, id, subscription{}});

  std::exception_ptr first_error;
  while (!queue.empty()) {
    const auto msg = queue.front();
    queue.pop_front();
    auto& b = brokers_[static_cast<std::size_t>(msg.broker)];
    try {
      if (msg.is_unsub) {
        const auto action = b.handle_unsubscribe(msg.from_link, msg.sid, metrics_);
        for (const int link : action.forward_links) {
          ++metrics_.unsubscription_messages;
          queue.push_back({link, msg.broker, true, msg.sid, subscription{}});
        }
        for (const auto& [link, sub_pair] : action.reforwards) {
          ++metrics_.subscription_messages;
          ++metrics_.reforwards;
          queue.push_back({link, msg.broker, false, sub_pair.first, sub_pair.second});
        }
      } else {
        const auto action = b.handle_subscribe(msg.from_link, msg.sid, msg.body, metrics_);
        for (const int link : action.forward_links) {
          ++metrics_.subscription_messages;
          queue.push_back({link, msg.broker, false, msg.sid, msg.body});
        }
      }
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return true;
}

std::vector<sub_id> network::publish(int broker_id, const event& e) {
  if (broker_id < 0 || broker_id >= topology_.size())
    throw std::invalid_argument("network::publish: bad broker id");
  std::vector<sub_id> delivered;

  if (faults_ != nullptr) {
    delivered = faults_->run_publish(broker_id, e);
  } else if (async_ != nullptr) {
    run_async(broker_id, net_msg{net_msg::kind::publish, kLocalLink, 0, subscription{}, &e});
    for (auto& del : async_->broker_deliveries) {
      delivered.insert(delivered.end(), del.begin(), del.end());
      del.clear();
    }
  } else {
    struct pending {
      int broker;
      int from_link;
    };
    std::deque<pending> queue{{broker_id, kLocalLink}};
    std::exception_ptr first_error;
    while (!queue.empty()) {
      const auto [b, from] = queue.front();
      queue.pop_front();
      try {
        const auto action = brokers_[static_cast<std::size_t>(b)].handle_event(from, e);
        for (const sub_id id : action.local_deliveries) {
          delivered.push_back(id);
          ++metrics_.deliveries;
        }
        for (const int link : action.forward_links) {
          ++metrics_.event_messages;
          queue.push_back({link, b});
        }
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
  }
  std::sort(delivered.begin(), delivered.end());
  // Tree routing visits each broker at most once, so ids cannot repeat; keep
  // the guarantee explicit for callers.
  SUBCOVER_DCHECK(std::adjacent_find(delivered.begin(), delivered.end()) == delivered.end(),
                  "network::publish: duplicate delivery");
  return delivered;
}

std::vector<sub_id> network::expected_recipients(const event& e) const {
  std::vector<sub_id> out;
  for (const auto& [id, rec] : owners_)
    if (matches(rec.s, e)) out.push_back(id);
  return out;
}

std::size_t network::total_routing_entries() const {
  std::size_t n = 0;
  for (const auto& b : brokers_) n += b.routing_entries();
  return n;
}

const broker& network::broker_at(int id) const {
  if (id < 0 || id >= topology_.size())
    throw std::invalid_argument("network::broker_at: bad broker id");
  return brokers_[static_cast<std::size_t>(id)];
}

broker_wal& network::wal_of(int broker_id) {
  if (faults_ == nullptr)
    throw std::logic_error("network::wal_of: only available in faults mode");
  if (broker_id < 0 || broker_id >= topology_.size())
    throw std::invalid_argument("network::wal_of: bad broker id");
  return faults_->wal_of(broker_id);
}

std::size_t network::recover_broker(int broker_id) {
  if (faults_ == nullptr)
    throw std::logic_error("network::recover_broker: only available in faults mode");
  if (broker_id < 0 || broker_id >= topology_.size())
    throw std::invalid_argument("network::recover_broker: bad broker id");
  return faults_->recover_broker(broker_id);
}

std::optional<int> network::owner_broker(sub_id id) const {
  const auto it = owners_.find(id);
  if (it == owners_.end()) return std::nullopt;
  return it->second.broker;
}

}  // namespace subcover
