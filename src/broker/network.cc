#include "broker/network.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "covering/sfc_covering_index.h"
#include "pubsub/matching.h"
#include "util/check.h"

namespace subcover {

namespace {

covering_index_factory default_factory() {
  return [](const schema& s) { return std::make_unique<sfc_covering_index>(s); };
}

}  // namespace

network::network(topology t, schema s, network_options options)
    : topology_(std::move(t)), schema_(std::move(s)), options_(std::move(options)) {
  if (!options_.factory) options_.factory = default_factory();
  broker_options bo;
  bo.use_covering = options_.use_covering;
  bo.epsilon = options_.epsilon;
  brokers_.reserve(static_cast<std::size_t>(topology_.size()));
  for (int i = 0; i < topology_.size(); ++i)
    brokers_.emplace_back(i, schema_, topology_.neighbors(i), options_.factory, bo);
}

sub_id network::subscribe(int broker_id, const subscription& s) {
  if (broker_id < 0 || broker_id >= topology_.size())
    throw std::invalid_argument("network::subscribe: bad broker id");
  const sub_id id = next_id_++;
  owners_.emplace(id, sub_record{broker_id, s});

  struct pending {
    int broker;
    int from_link;
  };
  std::deque<pending> queue{{broker_id, kLocalLink}};
  while (!queue.empty()) {
    const auto [b, from] = queue.front();
    queue.pop_front();
    const auto action =
        brokers_[static_cast<std::size_t>(b)].handle_subscribe(from, id, s, metrics_);
    for (const int link : action.forward_links) {
      ++metrics_.subscription_messages;
      queue.push_back({link, b});
    }
  }
  return id;
}

bool network::unsubscribe(sub_id id) {
  const auto rec = owners_.find(id);
  if (rec == owners_.end()) return false;

  struct pending {
    int broker;
    int from_link;
    bool is_unsub;          // unsubscription or a re-forwarded subscription
    sub_id sid;
    subscription body;      // used when !is_unsub
  };
  std::deque<pending> queue;
  queue.push_back({rec->second.broker, kLocalLink, true, id, subscription{}});
  owners_.erase(rec);

  while (!queue.empty()) {
    const auto msg = queue.front();
    queue.pop_front();
    auto& b = brokers_[static_cast<std::size_t>(msg.broker)];
    if (msg.is_unsub) {
      const auto action = b.handle_unsubscribe(msg.from_link, msg.sid, metrics_);
      for (const int link : action.forward_links) {
        ++metrics_.unsubscription_messages;
        queue.push_back({link, msg.broker, true, msg.sid, subscription{}});
      }
      for (const auto& [link, sub_pair] : action.reforwards) {
        ++metrics_.subscription_messages;
        ++metrics_.reforwards;
        queue.push_back({link, msg.broker, false, sub_pair.first, sub_pair.second});
      }
    } else {
      const auto action = b.handle_subscribe(msg.from_link, msg.sid, msg.body, metrics_);
      for (const int link : action.forward_links) {
        ++metrics_.subscription_messages;
        queue.push_back({link, msg.broker, false, msg.sid, msg.body});
      }
    }
  }
  return true;
}

std::vector<sub_id> network::publish(int broker_id, const event& e) {
  if (broker_id < 0 || broker_id >= topology_.size())
    throw std::invalid_argument("network::publish: bad broker id");
  std::vector<sub_id> delivered;
  struct pending {
    int broker;
    int from_link;
  };
  std::deque<pending> queue{{broker_id, kLocalLink}};
  while (!queue.empty()) {
    const auto [b, from] = queue.front();
    queue.pop_front();
    const auto action = brokers_[static_cast<std::size_t>(b)].handle_event(from, e);
    for (const sub_id id : action.local_deliveries) {
      delivered.push_back(id);
      ++metrics_.deliveries;
    }
    for (const int link : action.forward_links) {
      ++metrics_.event_messages;
      queue.push_back({link, b});
    }
  }
  std::sort(delivered.begin(), delivered.end());
  // Tree routing visits each broker at most once, so ids cannot repeat; keep
  // the guarantee explicit for callers.
  SUBCOVER_DCHECK(std::adjacent_find(delivered.begin(), delivered.end()) == delivered.end(),
                  "network::publish: duplicate delivery");
  return delivered;
}

std::vector<sub_id> network::expected_recipients(const event& e) const {
  std::vector<sub_id> out;
  for (const auto& [id, rec] : owners_)
    if (matches(rec.s, e)) out.push_back(id);
  return out;
}

std::size_t network::total_routing_entries() const {
  std::size_t n = 0;
  for (const auto& b : brokers_) n += b.routing_entries();
  return n;
}

const broker& network::broker_at(int id) const {
  if (id < 0 || id >= topology_.size())
    throw std::invalid_argument("network::broker_at: bad broker id");
  return brokers_[static_cast<std::size_t>(id)];
}

std::optional<int> network::owner_broker(sub_id id) const {
  const auto it = owners_.find(id);
  if (it == owners_.end()) return std::nullopt;
  return it->second.broker;
}

}  // namespace subcover
