#include "broker/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>

#include "broker/codec.h"
#include "util/check.h"

namespace subcover {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  SUBCOVER_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                 "transport: fcntl O_NONBLOCK failed");
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

sockaddr_in make_addr(const std::string& host, int port) {
  sockaddr_in a{};
  a.sin_family = AF_INET;
  a.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &a.sin_addr) != 1)
    throw std::invalid_argument("transport: bad IPv4 address: " + host);
  return a;
}

}  // namespace

// --- connection and op bookkeeping -------------------------------------------

struct broker_daemon::conn {
  int fd = -1;
  enum class kind : std::uint8_t { unknown, peer, client } k = kind::unknown;
  int peer_id = -1;
  bool connecting = false;           // outbound connect(2) still in flight
  std::int64_t connect_deadline = 0;  // unknown/connecting conns expire
  std::int64_t last_rx = 0;
  std::int64_t last_tx = 0;
  frame_decoder dec;
  std::vector<std::uint8_t> out;  // unwritten bytes, resumed on POLLOUT
  std::size_t out_pos = 0;
  bool dead = false;
};

struct broker_daemon::op_state {
  int parent_link = kLocalLink;  // peer the op arrived from; kLocalLink = client
  std::uint64_t parent_seq = 0;  // seq to ack on the parent channel
  conn* client = nullptr;        // client_done recipient; null = orphaned
  int pending_acks = 0;
  std::vector<sub_id> delivered;  // local + aggregated subtree deliveries
};

// --- construction / recovery -------------------------------------------------

namespace {

broker_wal open_wal(const transport_options& o) {
  if (o.wal_dir.empty()) return broker_wal{};
  return broker_wal::in_directory(o.wal_dir, o.broker_id, o.wal);
}

std::vector<int> peer_ids(const transport_options& o) {
  std::vector<int> ids;
  ids.reserve(o.peers.size());
  for (const auto& p : o.peers) ids.push_back(p.id);
  return ids;
}

}  // namespace

broker_daemon::broker_daemon(const schema& s, const covering_index_factory& factory,
                             transport_options opts)
    : schema_(s),
      factory_(factory),
      opts_(std::move(opts)),
      wal_(open_wal(opts_)),
      broker_(0, s, {}, factory, opts_.broker),
      rng_(opts_.seed ^ (static_cast<std::uint64_t>(opts_.broker_id) * 0x9e3779b97f4a7c15ULL)) {
  const auto rec = wal_.recover();
  broker_ = broker::recover(opts_.broker_id, schema_, peer_ids(opts_), factory_, opts_.broker, rec);
  const bool had_state =
      !rec.records.empty() || !rec.aux.empty() || !(rec.snapshot == broker_snapshot{});
  if (had_state) ++metrics_.recoveries;
  for (const auto& r : rec.records) {
    note_applied(r.op, r.from, r.seq);
    records_[r.op] = r;
  }
  load_dedup_aux(rec.aux);
  // Resume the local op-id counter past every op this broker ever
  // originated (applied_ holds both post-snapshot records and the aux
  // blob's checkpointed keys). Without this a restarted daemon would mint
  // op ids its neighbors already have dedup state for, and they would
  // replay stale records instead of applying the fresh operations.
  const std::uint64_t mine = static_cast<std::uint64_t>(opts_.broker_id + 1) << 40;
  for (const auto& [op, froms] : applied_)
    if ((op & ~((std::uint64_t{1} << 40) - 1)) == mine)
      op_counter_ = std::max(op_counter_, op & ((std::uint64_t{1} << 40) - 1));
  for (const auto& p : opts_.peers) peers_[p.id].addr = p;
  open_listener();
  resume_client_ops();
}

broker_daemon::~broker_daemon() {
  for (auto& c : conns_)
    if (c->fd >= 0) ::close(c->fd);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void broker_daemon::open_listener() {
  if (opts_.listen_fd >= 0) {
    listen_fd_ = opts_.listen_fd;  // adopted: pre-bound by the supervisor
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SUBCOVER_CHECK(listen_fd_ >= 0, "transport: socket failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    auto addr = make_addr(opts_.listen_host, opts_.listen_port);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      throw std::runtime_error(std::string("transport: bind failed: ") + std::strerror(errno));
    SUBCOVER_CHECK(::listen(listen_fd_, 32) == 0, "transport: listen failed");
  }
  set_nonblocking(listen_fd_);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  SUBCOVER_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
                 "transport: getsockname failed");
  listen_port_ = ntohs(bound.sin_port);
}

std::int64_t broker_daemon::now_ms() const {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

// --- event loop --------------------------------------------------------------

void broker_daemon::run() {
  while (step(50)) {
  }
}

bool broker_daemon::step(int timeout_ms) {
  if (stopping_) return false;
  poll_once(timeout_ms);
  return !stopping_;
}

void broker_daemon::poll_once(int timeout_ms) {
  const std::int64_t now = now_ms();
  start_connects(now);
  heartbeats(now);

  std::vector<pollfd> fds;
  std::vector<conn*> who;
  fds.push_back({listen_fd_, POLLIN, 0});
  who.push_back(nullptr);
  for (auto& c : conns_) {
    if (c->dead) continue;
    short ev = POLLIN;
    if (c->connecting || c->out_pos < c->out.size()) ev |= POLLOUT;
    fds.push_back({c->fd, ev, 0});
    who.push_back(c.get());
  }

  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0) {
    SUBCOVER_CHECK(errno == EINTR, "transport: poll failed");
    return;
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (who[i] == nullptr) {
      accept_ready();
      continue;
    }
    conn& c = *who[i];
    if (c.dead) continue;
    if (c.connecting) {
      if (fds[i].revents & (POLLOUT | POLLERR | POLLHUP)) finish_connect(c);
      continue;
    }
    if (fds[i].revents & (POLLERR | POLLHUP)) {
      // POLLHUP with readable bytes still pending: drain them first.
      if ((fds[i].revents & POLLIN) == 0) {
        close_conn(c, "hangup");
        continue;
      }
    }
    if (fds[i].revents & POLLIN) read_ready(c);
    if (!c.dead && (fds[i].revents & POLLOUT)) write_ready(c);
  }

  // Reap closed connections (pointers into conns_ die here; op_state client
  // pointers were nulled in close_conn).
  conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                              [](const std::unique_ptr<conn>& c) { return c->dead; }),
               conns_.end());
}

void broker_daemon::start_connects(std::int64_t now) {
  for (auto& [id, slot] : peers_) {
    if (id >= opts_.broker_id) continue;  // lower id accepts, higher dials
    if (slot.c != nullptr) continue;
    bool connecting = false;
    for (const auto& c : conns_)
      if (!c->dead && c->connecting && c->peer_id == id) connecting = true;
    if (connecting || now < slot.next_connect_ms) continue;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) continue;
    set_nonblocking(fd);
    set_nodelay(fd);
    auto addr = make_addr(slot.addr.host, slot.addr.port);
    const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(fd);
      slot.backoff_exp = std::min(slot.backoff_exp + 1, 8);
      const std::int64_t backoff =
          std::min<std::int64_t>(opts_.reconnect_cap_ms,
                                 std::int64_t{opts_.reconnect_base_ms} << slot.backoff_exp);
      slot.next_connect_ms =
          now + backoff + static_cast<std::int64_t>(rng_.uniform(
                              0, static_cast<std::uint64_t>(opts_.reconnect_base_ms)));
      continue;
    }
    auto c = std::make_unique<conn>();
    c->fd = fd;
    c->peer_id = id;
    c->connecting = true;
    c->connect_deadline = now + opts_.connect_timeout_ms;
    c->last_rx = c->last_tx = now;
    conns_.push_back(std::move(c));
    if (rc == 0) finish_connect(*conns_.back());
  }
}

void broker_daemon::finish_connect(conn& c) {
  int err = 0;
  socklen_t len = sizeof err;
  ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
  const int id = c.peer_id;
  if (err != 0) {
    close_conn(c, "connect failed");
    return;
  }
  c.connecting = false;
  // The initiator introduces itself; the acceptor identifies us by this
  // frame. We already know whom we dialed, so no hello comes back.
  wire_msg hello;
  hello.type = msg_type::hello;
  hello.sender = opts_.broker_id;
  queue_bytes(c, frame_msg(hello));
  identify_peer(c, id);
}

void broker_daemon::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or a transient error: back to poll
    set_nonblocking(fd);
    set_nodelay(fd);
    auto c = std::make_unique<conn>();
    c->fd = fd;
    const auto now = now_ms();
    c->last_rx = c->last_tx = now;
    // An accepted connection must identify (hello) or speak client protocol
    // before the accept timeout, or it is dropped.
    c->connect_deadline = now + opts_.connect_timeout_ms;
    conns_.push_back(std::move(c));
  }
}

void broker_daemon::identify_peer(conn& c, int peer_id) {
  const auto it = peers_.find(peer_id);
  if (it == peers_.end()) {
    close_conn(c, "hello from unknown broker");
    return;
  }
  auto& slot = it->second;
  if (slot.c != nullptr && slot.c != &c) close_conn(*slot.c, "superseded");
  c.k = conn::kind::peer;
  c.peer_id = peer_id;
  slot.c = &c;
  if (slot.ever_connected) ++metrics_.reconnects;
  slot.ever_connected = true;
  slot.backoff_exp = 0;
  flush_ledger(slot);
}

void broker_daemon::flush_ledger(peer_slot& p) {
  // Replay every unacked data message, oldest first. The receiver's
  // (op, from, seq) dedup turns the already-applied prefix into re-acks.
  for (const auto& e : p.unacked) queue_bytes(*p.c, frame_msg(e.msg));
}

void broker_daemon::close_conn(conn& c, const char* /*why*/) {
  if (c.dead) return;
  ::close(c.fd);
  c.fd = -1;
  c.dead = true;
  if (c.k == conn::kind::peer) {
    auto& slot = peers_[c.peer_id];
    if (slot.c == &c) {
      slot.c = nullptr;
      if (c.peer_id < opts_.broker_id) {
        slot.backoff_exp = std::min(slot.backoff_exp + 1, 8);
        const std::int64_t backoff =
            std::min<std::int64_t>(opts_.reconnect_cap_ms,
                                   std::int64_t{opts_.reconnect_base_ms} << slot.backoff_exp);
        slot.next_connect_ms =
            now_ms() + backoff + static_cast<std::int64_t>(rng_.uniform(
                                     0, static_cast<std::uint64_t>(opts_.reconnect_base_ms)));
      }
    }
  }
  // Orphan any operation still owing this client its client_done.
  for (auto& [op, st] : active_)
    if (st->client == &c) st->client = nullptr;
}

void broker_daemon::queue_bytes(conn& c, const std::vector<std::uint8_t>& bytes) {
  if (c.dead) return;
  c.out.insert(c.out.end(), bytes.begin(), bytes.end());
  if (!c.connecting) write_ready(c);  // eager flush; remainder waits for POLLOUT
}

void broker_daemon::write_ready(conn& c) {
  while (c.out_pos < c.out.size()) {
    const std::size_t want = c.out.size() - c.out_pos;
    const ssize_t w = ::send(c.fd, c.out.data() + c.out_pos, want, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      close_conn(c, "write error");
      return;
    }
    c.out_pos += static_cast<std::size_t>(w);
    metrics_.bytes_on_wire += static_cast<std::uint64_t>(w);
    c.last_tx = now_ms();
    if (static_cast<std::size_t>(w) < want) ++metrics_.partial_writes;
  }
  c.out.clear();
  c.out_pos = 0;
}

void broker_daemon::read_ready(conn& c) {
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t r = ::recv(c.fd, buf, sizeof buf, 0);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_conn(c, "read error");
      return;
    }
    if (r == 0) {
      close_conn(c, "peer closed");
      return;
    }
    c.last_rx = now_ms();
    metrics_.bytes_on_wire += static_cast<std::uint64_t>(r);
    c.dec.feed(buf, static_cast<std::size_t>(r));
    try {
      while (auto payload = c.dec.next()) {
        handle_frame(c, *payload);
        if (c.dead) return;
      }
    } catch (const wire_error&) {
      // Torn or corrupt frame: the stream cannot be trusted past this
      // point. Resynchronize by reconnect — the replayed ledger carries
      // everything that matters.
      close_conn(c, "corrupt frame");
      return;
    }
    if (static_cast<std::size_t>(r) < sizeof buf) break;
  }
}

void broker_daemon::heartbeats(std::int64_t now) {
  for (auto& c : conns_) {
    if (c->dead) continue;
    if (c->connecting || c->k == conn::kind::unknown) {
      if (now >= c->connect_deadline) close_conn(*c, "connect/identify timeout");
      continue;
    }
    if (c->k != conn::kind::peer) continue;
    if (now - c->last_rx >= opts_.peer_timeout_ms) {
      ++metrics_.heartbeats_missed;
      close_conn(*c, "peer silent");
      continue;
    }
    if (now - c->last_tx >= opts_.heartbeat_ms) {
      wire_msg hb;
      hb.type = msg_type::heartbeat;
      queue_bytes(*c, frame_msg(hb));
    }
  }
}

// --- protocol dispatch -------------------------------------------------------

void broker_daemon::handle_frame(conn& c, const std::vector<std::uint8_t>& payload) {
  const wire_msg m = decode_msg(payload.data(), payload.size());
  if (c.k == conn::kind::unknown) {
    if (m.type == msg_type::hello) {
      identify_peer(c, m.sender);
      return;
    }
    c.k = conn::kind::client;  // first frame decides the connection's role
  }
  if (c.k == conn::kind::peer)
    handle_peer_msg(c, m);
  else
    handle_client_msg(c, m);
}

void broker_daemon::handle_peer_msg(conn& c, const wire_msg& m) {
  switch (m.type) {
    case msg_type::heartbeat:
    case msg_type::hello:
      return;
    case msg_type::subscribe:
    case msg_type::unsubscribe:
    case msg_type::publish:
      handle_data(c.peer_id, m);
      return;
    case msg_type::ack:
      handle_ack(c.peer_id, m);
      return;
    default:
      close_conn(c, "client message on peer connection");
  }
}

void broker_daemon::handle_client_msg(conn& c, const wire_msg& m) {
  switch (m.type) {
    case msg_type::client_subscribe:
    case msg_type::client_unsubscribe:
    case msg_type::client_publish: {
      const std::uint64_t op =
          (static_cast<std::uint64_t>(opts_.broker_id + 1) << 40) | ++op_counter_;
      wire_msg data;
      data.op = op;
      data.seq = 0;
      data.type = m.type == msg_type::client_subscribe    ? msg_type::subscribe
                  : m.type == msg_type::client_unsubscribe ? msg_type::unsubscribe
                                                           : msg_type::publish;
      data.id = m.id;
      data.body = m.body;
      data.values = m.values;
      auto st = std::make_unique<op_state>();
      st->parent_link = kLocalLink;
      st->client = &c;
      try {
        process_fresh(kLocalLink, data, *st);
      } catch (const std::exception&) {
        // Malformed client input (bad event width, unknown id): report,
        // don't take the daemon down.
        wire_msg done;
        done.type = msg_type::client_done;
        done.op = op;
        done.status = 1;
        queue_bytes(c, frame_msg(done));
        return;
      }
      if (st->pending_acks == 0)
        complete_op(op, *st);
      else
        active_[op] = std::move(st);
      return;
    }
    case msg_type::client_dump: {
      wire_msg reply;
      reply.type = msg_type::dump_reply;
      reply.snapshot = encode_snapshot(broker_.snapshot());
      reply.metrics = metrics_;
      queue_bytes(c, frame_msg(reply));
      return;
    }
    case msg_type::client_shutdown:
      if (opts_.checkpoint_every > 0 && active_.empty()) {
        broker_.checkpoint(wal_);
        wal_.write_snapshot(broker_.snapshot(), dedup_aux());
        records_.clear();
        metrics_.wal_bytes = wal_.bytes_appended();
      }
      stopping_ = true;
      return;
    default:
      close_conn(c, "peer message on client connection");
  }
}

// --- operation processing ----------------------------------------------------

void broker_daemon::note_applied(std::uint64_t op, int from, std::uint64_t seq) {
  auto& pos = applied_[op][from];
  if (seq + 1 > pos) pos = seq + 1;
}

void broker_daemon::handle_data(int from, const wire_msg& m) {
  std::uint64_t next = 0;
  if (const auto oit = applied_.find(m.op); oit != applied_.end())
    if (const auto fit = oit->second.find(from); fit != oit->second.end()) next = fit->second;

  if (m.seq == next) {
    auto st = std::make_unique<op_state>();
    st->parent_link = from;
    st->parent_seq = m.seq;
    process_fresh(from, m, *st);
    if (st->pending_acks == 0)
      complete_op(m.op, *st);
    else
      active_[m.op] = std::move(st);
    return;
  }
  if (m.seq > next) {
    // TCP is in-order and the ledger replays in order: a gap means the
    // sender and receiver disagree about history. Drop the connection.
    if (auto& slot = peers_[from]; slot.c != nullptr) close_conn(*slot.c, "sequence gap");
    return;
  }

  // Duplicate: only reconnect replay produces these.
  ++metrics_.duplicates_suppressed;
  if (active_.count(m.op) != 0) return;  // in flight: our eventual ack covers it

  // The subtree's ack state died with a crash (ours or an ancestor's).
  // Rebuild it by deterministic re-emission — see transport.h.
  auto st = std::make_unique<op_state>();
  st->parent_link = from;
  st->parent_seq = m.seq;
  if (const auto it = records_.find(m.op); it != records_.end()) {
    if (it->second.k == wal_record::kind::event_receipt)
      replay_publish(from, m, *st);
    else
      replay_record(it->second, *st);
  } else if (m.type == msg_type::publish) {
    // Record checkpointed away: the subtree completed, but the delivered
    // set must be reassembled for the ack.
    replay_publish(from, m, *st);
  }
  // else: checkpointed subscribe/unsubscribe — downstream is durable and
  // quiescent; the empty re-ack below is all the parent needs.
  if (st->pending_acks == 0)
    complete_op(m.op, *st);
  else
    active_[m.op] = std::move(st);
}

void broker_daemon::process_fresh(int from, const wire_msg& m, op_state& st) {
  wal_record r;
  r.op = m.op;
  r.from = from;
  r.seq = m.seq;
  switch (m.type) {
    case msg_type::subscribe: {
      const auto action = broker_.handle_subscribe(from, m.id, m.body, metrics_);
      r.k = wal_record::kind::subscribe;
      r.id = m.id;
      r.body = m.body;
      r.forwarded_links = action.forward_links;
      wal_.append(r);
      note_applied(m.op, from, m.seq);
      records_[m.op] = r;
      for (const int link : action.forward_links) {
        ++metrics_.subscription_messages;
        wire_msg out;
        out.type = msg_type::subscribe;
        out.id = m.id;
        out.body = m.body;
        emit_data(m.op, link, std::move(out), st);
      }
      break;
    }
    case msg_type::unsubscribe: {
      const auto action = broker_.handle_unsubscribe(from, m.id, metrics_);
      r.k = wal_record::kind::unsubscribe;
      r.id = m.id;
      r.withdrawn_links = action.forward_links;
      r.reforwards = action.reforwards;
      wal_.append(r);
      note_applied(m.op, from, m.seq);
      records_[m.op] = r;
      for (const int link : action.forward_links) {
        ++metrics_.unsubscription_messages;
        wire_msg out;
        out.type = msg_type::unsubscribe;
        out.id = m.id;
        emit_data(m.op, link, std::move(out), st);
      }
      for (const auto& [link, sub_pair] : action.reforwards) {
        ++metrics_.subscription_messages;
        ++metrics_.reforwards;
        wire_msg out;
        out.type = msg_type::subscribe;
        out.id = sub_pair.first;
        out.body = sub_pair.second;
        emit_data(m.op, link, std::move(out), st);
      }
      break;
    }
    case msg_type::publish: {
      const event e(schema_, m.values);
      const auto action = broker_.handle_event(from, e);
      r.k = wal_record::kind::event_receipt;
      wal_.append(r);
      note_applied(m.op, from, m.seq);
      records_[m.op] = r;
      for (const sub_id id : action.local_deliveries) {
        st.delivered.push_back(id);
        ++metrics_.deliveries;
      }
      for (const int link : action.forward_links) {
        ++metrics_.event_messages;
        wire_msg out;
        out.type = msg_type::publish;
        out.values = m.values;
        emit_data(m.op, link, std::move(out), st);
      }
      break;
    }
    default:
      SUBCOVER_CHECK(false, "transport: non-data message in process_fresh");
  }
  metrics_.wal_bytes = wal_.bytes_appended();
}

void broker_daemon::replay_record(const wal_record& r, op_state& st) {
  // Physical re-emission of a logged disposition: no broker handler runs
  // and no logical counter moves. Emission order matches process_fresh
  // exactly, so the regenerated per-op per-link seqs equal the originals.
  switch (r.k) {
    case wal_record::kind::subscribe:
      for (const int link : r.forwarded_links) {
        wire_msg out;
        out.type = msg_type::subscribe;
        out.id = r.id;
        out.body = r.body;
        emit_data(r.op, link, std::move(out), st);
      }
      break;
    case wal_record::kind::unsubscribe:
      for (const int link : r.withdrawn_links) {
        wire_msg out;
        out.type = msg_type::unsubscribe;
        out.id = r.id;
        emit_data(r.op, link, std::move(out), st);
      }
      for (const auto& [link, sub_pair] : r.reforwards) {
        wire_msg out;
        out.type = msg_type::subscribe;
        out.id = sub_pair.first;
        out.body = sub_pair.second;
        emit_data(r.op, link, std::move(out), st);
      }
      break;
    case wal_record::kind::event_receipt:
      // Needs the event payload, which only a duplicate message carries —
      // replay_publish handles that path; client-origin receipts are not
      // resumable (resume_client_ops skips them).
      break;
  }
}

void broker_daemon::replay_publish(int from, const wire_msg& m, op_state& st) {
  // Events mutate no routing state and the cluster runs one operation at a
  // time, so re-running the (const) handler against the recovered tables
  // recomputes the original deliveries and forwards. Logical counters
  // stay untouched: this is physical redo, not new work.
  const event e(schema_, m.values);
  const auto action = broker_.handle_event(from, e);
  st.delivered.insert(st.delivered.end(), action.local_deliveries.begin(),
                      action.local_deliveries.end());
  for (const int link : action.forward_links) {
    wire_msg out;
    out.type = msg_type::publish;
    out.values = m.values;
    emit_data(m.op, link, std::move(out), st);
  }
}

void broker_daemon::emit_data(std::uint64_t op, int link, wire_msg m, op_state& st) {
  m.op = op;
  m.seq = send_seq_[op][link]++;
  ++st.pending_acks;
  auto& slot = peers_[link];
  slot.unacked.push_back({op, m.seq, m});
  if (slot.c != nullptr) queue_bytes(*slot.c, frame_msg(m));
  // else: the peer is down; the ledger entry goes out on reconnect.
}

void broker_daemon::handle_ack(int from, const wire_msg& m) {
  auto& slot = peers_[from];
  const auto it = std::find_if(slot.unacked.begin(), slot.unacked.end(),
                               [&](const ledger_entry& e) {
                                 return e.op == m.op && e.seq == m.seq;
                               });
  if (it == slot.unacked.end()) return;  // stale re-ack of an already-acked send
  slot.unacked.erase(it);
  const auto ait = active_.find(m.op);
  if (ait == active_.end()) return;
  op_state& st = *ait->second;
  st.delivered.insert(st.delivered.end(), m.delivered.begin(), m.delivered.end());
  if (--st.pending_acks == 0) {
    auto owned = std::move(ait->second);
    active_.erase(ait);
    complete_op(m.op, *owned);
  }
}

void broker_daemon::complete_op(std::uint64_t op, op_state& st) {
  std::sort(st.delivered.begin(), st.delivered.end());
  if (st.parent_link == kLocalLink) {
    if (st.client != nullptr && !st.client->dead) {
      wire_msg done;
      done.type = msg_type::client_done;
      done.op = op;
      done.status = 0;
      done.delivered = st.delivered;
      queue_bytes(*st.client, frame_msg(done));
    }
    // else: orphaned client op (resumed after a crash, or the client went
    // away) — the state converged; only the notification is dropped.
  } else {
    wire_msg ack;
    ack.type = msg_type::ack;
    ack.op = op;
    ack.seq = st.parent_seq;
    ack.delivered = st.delivered;
    if (auto& slot = peers_[st.parent_link]; slot.c != nullptr)
      queue_bytes(*slot.c, frame_msg(ack));
    // else: the ack is lost with the dead connection; the parent replays
    // on reconnect and the duplicate path re-acks.
  }
  active_.erase(op);
  send_seq_.erase(op);
  maybe_checkpoint();
}

void broker_daemon::maybe_checkpoint() {
  if (opts_.checkpoint_every == 0 || !active_.empty()) return;
  if (wal_.records_since_snapshot() < opts_.checkpoint_every) return;
  // Quiescent boundary: every op this daemon has seen is subtree-complete,
  // so compacting cannot orphan a record a replay still needs — and the
  // aux blob carries the dedup keys forward so the exactly-once window
  // stays closed across the compaction.
  broker_.checkpoint(wal_);
  wal_.write_snapshot(broker_.snapshot(), dedup_aux());
  records_.clear();
  metrics_.wal_bytes = wal_.bytes_appended();
}

// --- dedup persistence and startup resume ------------------------------------

std::vector<std::uint8_t> broker_daemon::dedup_aux() const {
  std::vector<std::uint8_t> out;
  std::uint64_t entries = 0;
  for (const auto& [op, by_from] : applied_) entries += by_from.size();
  codec::put_varint(out, entries);
  for (const auto& [op, by_from] : applied_)
    for (const auto& [from, next] : by_from) {
      codec::put_varint(out, op);
      codec::put_signed(out, from);
      codec::put_varint(out, next);
    }
  return out;
}

void broker_daemon::load_dedup_aux(const std::vector<std::uint8_t>& aux) {
  if (aux.empty()) return;
  codec::basic_byte_reader<wal_error> in{aux.data(), aux.data() + aux.size()};
  const auto entries = in.varint();
  for (std::uint64_t i = 0; i < entries; ++i) {
    const auto op = in.varint();
    const auto from = static_cast<int>(in.signed_varint());
    const auto next = in.varint();
    auto& pos = applied_[op][from];
    if (next > pos) pos = next;
  }
  if (!in.done()) throw wal_error("wal: trailing bytes in dedup aux blob");
}

void broker_daemon::resume_client_ops() {
  // Client-origin records have no parent to retransmit them: if their op
  // was cut short by the crash, nothing else in the cluster will finish
  // it. Re-emit them all (completed ones cost a few suppressed duplicates
  // and empty re-acks; the incomplete one converges the cluster).
  for (const auto& [op, r] : records_) {
    if (r.from != kLocalLink) continue;
    if (r.k == wal_record::kind::event_receipt) continue;  // no payload to replay
    auto st = std::make_unique<op_state>();
    st->parent_link = kLocalLink;
    st->client = nullptr;  // its client died with the previous incarnation
    replay_record(r, *st);
    if (st->pending_acks > 0) active_[op] = std::move(st);
    // pending == 0 (leaf broker): nothing to do — state is durable and
    // there is no client to notify.
  }
}

// --- cluster_client ----------------------------------------------------------

cluster_client::~cluster_client() { close(); }

void cluster_client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

void cluster_client::connect(const std::string& host, int port, int deadline_ms) {
  close();
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  const std::int64_t deadline =
      static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000 + deadline_ms;
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      auto addr = make_addr(host, port);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
        set_nodelay(fd);
        fd_ = fd;
        decoder_ = frame_decoder{};  // a new stream needs a clean reassembly state
        return;
      }
      ::close(fd);
    }
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    if (static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000 >= deadline)
      throw wire_error("client: connect deadline exceeded for " + host + ":" +
                       std::to_string(port));
    const timespec nap{0, 20 * 1000 * 1000};
    ::nanosleep(&nap, nullptr);
  }
}

void cluster_client::send(const wire_msg& m) {
  if (fd_ < 0) throw wire_error("client: not connected");
  const auto bytes = frame_msg(m);
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t w = ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      close();
      throw wire_error("client: connection lost on send");
    }
    off += static_cast<std::size_t>(w);
  }
}

std::optional<wire_msg> cluster_client::recv(int timeout_ms) {
  if (fd_ < 0) throw wire_error("client: not connected");
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  const std::int64_t deadline =
      static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000 + timeout_ms;
  for (;;) {
    if (auto payload = decoder_.next())
      return decode_msg(payload->data(), payload->size());
    ::clock_gettime(CLOCK_MONOTONIC, &ts);
    const std::int64_t left =
        deadline - (static_cast<std::int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000);
    if (left <= 0) return std::nullopt;
    pollfd p{fd_, POLLIN, 0};
    const int n = ::poll(&p, 1, static_cast<int>(left));
    if (n < 0 && errno != EINTR) {
      close();
      throw wire_error("client: poll failed");
    }
    if (n <= 0) continue;
    std::uint8_t buf[65536];
    const ssize_t r = ::recv(fd_, buf, sizeof buf, 0);
    if (r <= 0) {
      close();
      throw wire_error("client: connection closed");
    }
    decoder_.feed(buf, static_cast<std::size_t>(r));
  }
}

wire_msg cluster_client::request(const wire_msg& m, int timeout_ms) {
  send(m);
  auto reply = recv(timeout_ms);
  if (!reply) throw wire_error("client: request timed out");
  return *reply;
}

}  // namespace subcover
