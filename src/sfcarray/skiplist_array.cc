#include "sfcarray/skiplist_array.h"

#include <new>
#include <stdexcept>

namespace subcover {

template <class K>
auto basic_skiplist_array<K>::make_node(const entry& e, int level) -> node* {
  void* mem = ::operator new(node_bytes(level));
  node* n = new (mem) node{e, level};
  for (int i = 0; i < level; ++i) n->link(i) = nullptr;
  return n;
}

template <class K>
void basic_skiplist_array<K>::free_node(node* n) {
  n->~node();
  ::operator delete(n);
}

template <class K>
basic_skiplist_array<K>::basic_skiplist_array(std::uint64_t seed)
    : head_(make_node(entry{}, kMaxLevel)), node_bytes_(node_bytes(kMaxLevel)), rng_(seed) {}

template <class K>
basic_skiplist_array<K>::~basic_skiplist_array() {
  node* n = head_;
  while (n != nullptr) {
    node* next = n->link(0);
    free_node(n);
    n = next;
  }
}

template <class K>
int basic_skiplist_array<K>::random_level() {
  int level = 1;
  // Promote with probability 1/4 per level (classic skip-list parameter).
  while (level < kMaxLevel && (rng_.next() & 3U) == 0) ++level;
  return level;
}

template <class K>
auto basic_skiplist_array<K>::find_geq(const K& key, std::uint64_t id,
                                       std::array<node*, kMaxLevel>* update) const -> node* {
  const entry target{key, id};
  node* cur = head_;
  for (int lvl = level_ - 1; lvl >= 0; --lvl) {
    while (cur->link(lvl) != nullptr && entry_less(cur->link(lvl)->e, target)) {
      cur = cur->link(lvl);
    }
    if (update != nullptr) (*update)[static_cast<std::size_t>(lvl)] = cur;
  }
  return cur->link(0);
}

template <class K>
void basic_skiplist_array<K>::insert(const K& key, std::uint64_t id) {
  std::array<node*, kMaxLevel> update{};
  for (int i = level_; i < kMaxLevel; ++i) update[static_cast<std::size_t>(i)] = head_;
  find_geq(key, id, &update);
  const int lvl = random_level();
  if (lvl > level_) level_ = lvl;
  node* n = make_node(entry{key, id}, lvl);
  node_bytes_ += node_bytes(lvl);
  for (int i = 0; i < lvl; ++i) {
    node* prev = update[static_cast<std::size_t>(i)];
    n->link(i) = prev->link(i);
    prev->link(i) = n;
  }
  ++size_;
}

template <class K>
bool basic_skiplist_array<K>::erase(const K& key, std::uint64_t id) {
  std::array<node*, kMaxLevel> update{};
  for (int i = 0; i < kMaxLevel; ++i) update[static_cast<std::size_t>(i)] = head_;
  node* hit = find_geq(key, id, &update);
  if (hit == nullptr || hit->e.key != key || hit->e.id != id) return false;
  for (int i = 0; i < hit->level; ++i) {
    node* prev = update[static_cast<std::size_t>(i)];
    if (prev->link(i) == hit) prev->link(i) = hit->link(i);
  }
  node_bytes_ -= node_bytes(hit->level);
  free_node(hit);
  while (level_ > 1 && head_->link(level_ - 1) == nullptr) --level_;
  --size_;
  return true;
}

template <class K>
auto basic_skiplist_array<K>::first_in(const range_type& r) const -> std::optional<entry> {
  const node* n = find_geq(r.lo, 0, nullptr);
  if (n == nullptr || n->e.key > r.hi) return std::nullopt;
  return n->e;
}

template <class K>
void basic_skiplist_array<K>::probe_frontier(std::span<const range_type> frontier,
                                             frontier_sink& sink) const {
  // One resumed top-down descent across the whole frontier (Pugh's
  // search-with-a-finger, forward-only). finger[lvl] is the rightmost node
  // visited at level lvl — always head_ or a node whose entry is strictly
  // below every remaining target, so it is a valid left bound for all later
  // probes (frontier lows are non-decreasing). The first probe is a plain
  // descent (exactly first_in's cost) and fills every live finger; later
  // probes resume from the fingers.
  std::array<node*, kMaxLevel> finger;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const range_type& r = frontier[i];
    const entry target{r.lo, 0};
    int lvl;
    node* cur;
    if (i == 0) {
      lvl = level_ - 1;
      cur = head_;
    } else {
      // Climb only as high as this target requires: while the next node at
      // the level above is still left of the target, starting there skips
      // work. Far targets climb to the top (a fresh descent); near targets
      // stay low, costing O(log distance) instead of O(log n).
      lvl = 0;
      while (lvl + 1 < level_) {
        const node* up_next = finger[static_cast<std::size_t>(lvl + 1)]->link(lvl + 1);
        if (up_next == nullptr || !entry_less(up_next->e, target)) break;
        ++lvl;
      }
      cur = finger[static_cast<std::size_t>(lvl)];
    }
    for (; lvl >= 0; --lvl) {
      while (cur->link(lvl) != nullptr && entry_less(cur->link(lvl)->e, target)) {
        cur = cur->link(lvl);
      }
      finger[static_cast<std::size_t>(lvl)] = cur;
    }
    // cur is now the rightmost node < (r.lo, 0); its level-0 successor is
    // exactly what find_geq(r.lo, 0) returns.
    const node* geq = cur->link(0);
    const entry* hit = (geq != nullptr && geq->e.key <= r.hi) ? &geq->e : nullptr;
    if (!sink.on_probe(i, hit)) return;
  }
}

template <class K>
std::uint64_t basic_skiplist_array<K>::count_in(const range_type& r) const {
  std::uint64_t count = 0;
  for (const node* n = find_geq(r.lo, 0, nullptr); n != nullptr && n->e.key <= r.hi;
       n = n->link(0))
    ++count;
  return count;
}

template <class K>
std::size_t basic_skiplist_array<K>::size() const {
  return size_;
}

template <class K>
void basic_skiplist_array<K>::for_each(const std::function<void(const entry&)>& fn) const {
  for (const node* n = head_->link(0); n != nullptr; n = n->link(0)) fn(n->e);
}

template <class K>
std::size_t basic_skiplist_array<K>::memory_footprint() const {
  // Every node is one allocation of node_bytes(level); node_bytes_ tracks
  // the live total (head sentinel included) so this is O(1).
  return sizeof(*this) + node_bytes_;
}

template <class K>
void basic_skiplist_array<K>::check_invariants() const {
  // Level 0 holds every entry in (key, id) order.
  std::size_t counted = 0;
  for (const node* n = head_->link(0); n != nullptr; n = n->link(0)) {
    ++counted;
    if (n->level < 1 || n->level > kMaxLevel)
      throw std::logic_error("skiplist: node level out of range");
    if (n->link(0) != nullptr && !entry_less(n->e, n->link(0)->e) && n->e != n->link(0)->e)
      throw std::logic_error("skiplist: level-0 ordering violated");
  }
  if (counted != size_) throw std::logic_error("skiplist: size mismatch");
  // Every higher level is a sorted sublist of level 0.
  for (int lvl = 1; lvl < level_; ++lvl) {
    const node* prev = nullptr;
    for (const node* n = head_->link(lvl); n != nullptr; n = n->link(lvl)) {
      if (n->level <= lvl) throw std::logic_error("skiplist: node present above its level");
      // Exact-duplicate (key, id) entries are permitted, so only a strict
      // inversion is a violation.
      if (prev != nullptr && entry_less(n->e, prev->e))
        throw std::logic_error("skiplist: upper-level ordering violated");
      prev = n;
    }
  }
}

template class basic_skiplist_array<std::uint64_t>;
template class basic_skiplist_array<u128>;
template class basic_skiplist_array<u512>;

}  // namespace subcover
