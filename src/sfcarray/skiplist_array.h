// Skip-list implementation of the SFC array (Pugh 1990), the dynamic ordered
// structure the paper suggests for maintaining subscriptions in curve order.
//
// Expected O(log n) insert / erase / first_in. Levels are drawn with
// probability 1/4 per promotion from a deterministic internal RNG, so runs
// are reproducible. The node store is owned exclusively by the list; raw
// `node*` links never escape the class.
//
// Node layout: the per-level forward links live in a flexible array placed
// directly after the node header in a single allocation, instead of a
// per-node std::vector. A probe descent therefore touches one cache line
// per node at the common low levels (entry and links are contiguous) and
// every node costs exactly one allocation — the dominant constant-factor
// win for narrow keys, where the entry itself is one or two words.
//
// probe_frontier answers a sorted level frontier with one resumed top-down
// descent (Pugh's search-with-a-finger, forward-only): the rightmost node
// visited at each level is kept as a finger, and the next probe climbs only
// as high as its target requires before descending again — the sweep never
// re-enters the list above the last node touched, so M probes cost one
// overall left-to-right pass instead of M independent O(log n) descents.
#pragma once

#include <array>
#include <cstdint>

#include "sfcarray/sfc_array.h"
#include "util/random.h"

namespace subcover {

template <class K>
class basic_skiplist_array final : public basic_sfc_array<K> {
 public:
  using base = basic_sfc_array<K>;
  using entry = typename base::entry;
  using range_type = typename base::range_type;
  using frontier_sink = typename base::frontier_sink;

  explicit basic_skiplist_array(std::uint64_t seed = 0x5c1b1157u);
  ~basic_skiplist_array() override;

  void insert(const K& key, std::uint64_t id) override;
  bool erase(const K& key, std::uint64_t id) override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r) const override;
  void probe_frontier(std::span<const range_type> frontier, frontier_sink& sink) const override;
  [[nodiscard]] std::uint64_t count_in(const range_type& r) const override;
  [[nodiscard]] std::size_t size() const override;
  void for_each(const std::function<void(const entry&)>& fn) const override;
  [[nodiscard]] std::size_t memory_footprint() const override;

  // Verifies structural invariants (ordering on every level, level-0
  // completeness); used by tests. Throws std::logic_error on violation.
  void check_invariants() const;

 private:
  static constexpr int kMaxLevel = 32;

  // Header of a node; the `level` forward links follow immediately in the
  // same allocation (see make_node / links()).
  struct node {
    entry e;
    int level;  // number of links stored after the header

    node*& link(int i) { return links()[i]; }
    node* link(int i) const { return links()[i]; }

   private:
    node** links() { return reinterpret_cast<node**>(this + 1); }
    node* const* links() const { return reinterpret_cast<node* const*>(this + 1); }
  };
  // The links array starts at `this + 1`, so the header size must keep it
  // pointer-aligned.
  static_assert(sizeof(node) % alignof(node*) == 0);
  static_assert(alignof(node) >= alignof(node*));

  // Single-allocation node factory: header + `level` null links.
  static node* make_node(const entry& e, int level);
  static void free_node(node* n);
  // Allocation size of a level-`level` node (header + link array) — what
  // make_node requests and what the footprint audit charges per node.
  static constexpr std::size_t node_bytes(int level) {
    return sizeof(node) + static_cast<std::size_t>(level) * sizeof(node*);
  }

  // Strict (key, id) ordering used for positioning.
  static bool entry_less(const entry& a, const entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  int random_level();
  // First node with entry >= (key, id) in entry order; fills `update` with
  // the rightmost node before the position on every level when non-null.
  node* find_geq(const K& key, std::uint64_t id, std::array<node*, kMaxLevel>* update) const;

  node* head_;  // sentinel with kMaxLevel links
  int level_ = 1;
  std::size_t size_ = 0;
  std::size_t node_bytes_ = 0;  // live node allocations, head included
  rng rng_;
};

using skiplist_array = basic_skiplist_array<u512>;

extern template class basic_skiplist_array<std::uint64_t>;
extern template class basic_skiplist_array<u128>;
extern template class basic_skiplist_array<u512>;

}  // namespace subcover
