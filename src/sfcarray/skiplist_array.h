// Skip-list implementation of the SFC array (Pugh 1990), the dynamic ordered
// structure the paper suggests for maintaining subscriptions in curve order.
//
// Expected O(log n) insert / erase / first_in. Levels are drawn with
// probability 1/4 per promotion from a deterministic internal RNG, so runs
// are reproducible. The node store is owned exclusively by the list; raw
// `node*` links never escape the class.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sfcarray/sfc_array.h"
#include "util/random.h"

namespace subcover {

template <class K>
class basic_skiplist_array final : public basic_sfc_array<K> {
 public:
  using base = basic_sfc_array<K>;
  using entry = typename base::entry;
  using range_type = typename base::range_type;

  explicit basic_skiplist_array(std::uint64_t seed = 0x5c1b1157u);
  ~basic_skiplist_array() override;

  void insert(const K& key, std::uint64_t id) override;
  bool erase(const K& key, std::uint64_t id) override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r) const override;
  [[nodiscard]] std::uint64_t count_in(const range_type& r) const override;
  [[nodiscard]] std::size_t size() const override;
  void for_each(const std::function<void(const entry&)>& fn) const override;

  // Verifies structural invariants (ordering on every level, level-0
  // completeness); used by tests. Throws std::logic_error on violation.
  void check_invariants() const;

 private:
  static constexpr int kMaxLevel = 32;

  struct node {
    entry e;
    std::vector<node*> next;  // size == node level
    node(entry en, int level) : e(en), next(static_cast<std::size_t>(level), nullptr) {}
  };

  // Strict (key, id) ordering used for positioning.
  static bool entry_less(const entry& a, const entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  }

  int random_level();
  // First node with entry >= (key, id) in entry order; fills `update` with
  // the rightmost node before the position on every level when non-null.
  node* find_geq(const K& key, std::uint64_t id, std::array<node*, kMaxLevel>* update) const;

  node* head_;  // sentinel with kMaxLevel links
  int level_ = 1;
  std::size_t size_ = 0;
  rng rng_;
};

using skiplist_array = basic_skiplist_array<u512>;

extern template class basic_skiplist_array<std::uint64_t>;
extern template class basic_skiplist_array<u128>;
extern template class basic_skiplist_array<u512>;

}  // namespace subcover
