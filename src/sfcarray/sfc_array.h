// The SFC array (paper Section 2): a dynamic one-dimensional ordered
// container holding (key, id) pairs sorted by SFC key. The paper notes it
// "could be implemented using any dynamic unidimensional data structure such
// as a binary tree or a skip list"; both a skip list (default, dynamic) and a
// sorted vector (compact, bulk-load friendly) are provided behind this
// interface.
//
// Duplicate keys are allowed (distinct subscriptions may map to the same
// cell); entries are ordered by (key, id) so erase is deterministic.
// The only query the covering algorithms need is run probing: "is there any
// entry with key in [lo, hi], and if so which" — first_in() for one run,
// probe_frontier() for a whole sorted level frontier in one resumed sweep.
//
// The interface is templated on the key type (key_traits.h): a
// basic_sfc_array<std::uint64_t> stores and compares one machine word per
// key where the u512 reference width burns eight. `sfc_array` remains the
// u512 alias; dominance_index selects the width to match its curve at
// construction time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sfc/key_range.h"
#include "util/key_traits.h"
#include "util/wideint.h"

namespace subcover {

enum class sfc_array_kind { skiplist, sorted_vector };

// Physical tombstone/compaction work, the churn-side ledger backends keep
// cumulatively (the probe-side twin of tier_counters). query_plan diffs it
// per query into query_stats (maint_* fields) — and from there
// covering_check_stats and network_metrics aggregate it per covering check /
// per network. Backends without deferred erase leave it at zero.
struct maintenance_counters {
  // Erases recorded as tombstones instead of physical removals.
  std::uint64_t tombstones_added = 0;
  // Dead slots physically reclaimed by compaction passes.
  std::uint64_t tombstones_purged = 0;
  // Compaction passes run (whole-vector rewrites for the sorted vector,
  // single-block rewrites for the compressed cold tier, hot-tier flushes
  // for the tiered array).
  std::uint64_t compactions = 0;

  maintenance_counters& operator+=(const maintenance_counters& o) {
    tombstones_added += o.tombstones_added;
    tombstones_purged += o.tombstones_purged;
    compactions += o.compactions;
    return *this;
  }
};

template <class K>
class basic_sfc_array {
 public:
  using key_type = K;
  using range_type = basic_key_range<K>;

  struct entry {
    K key{};
    std::uint64_t id = 0;
    friend bool operator==(const entry&, const entry&) = default;
  };

  virtual ~basic_sfc_array() = default;
  basic_sfc_array() = default;
  basic_sfc_array(const basic_sfc_array&) = delete;
  basic_sfc_array& operator=(const basic_sfc_array&) = delete;

  // Probe-locality cursor for first_in. Successive probes at nearby keys can
  // start from the previous position instead of re-descending from the root;
  // implementations that cannot exploit locality ignore it. A
  // value-initialized hint means "no locality information". The cursor is
  // only meaningful for the array it was produced by and is invalidated by
  // any mutation (a stale cursor is never incorrect — only slower).
  struct probe_hint {
    std::size_t pos = 0;
  };

  virtual void insert(const K& key, std::uint64_t id) = 0;
  // Removes one (key, id) occurrence; returns false if absent.
  virtual bool erase(const K& key, std::uint64_t id) = 0;
  // Bulk erase, equivalent to erase() per element (order-insensitive);
  // returns the number of occurrences actually removed. The default loops
  // over erase(); backends with deferred erase override it to pay the
  // search/compaction machinery once per batch instead of once per element
  // — the broker's bulk-withdrawal path (erase_batch up the stack) ends
  // here.
  virtual std::size_t erase_batch(const std::vector<entry>& entries) {
    std::size_t erased = 0;
    for (const entry& e : entries) {
      if (erase(e.key, e.id)) ++erased;
    }
    return erased;
  }
  // Capacity pre-sizing for bulk population; a no-op by default.
  virtual void reserve(std::size_t n) { (void)n; }
  // Bulk insertion, equivalent to insert() per element (order-insensitive).
  // The default loops over insert(); the sorted vector amortizes to one sort
  // plus one merge, which is what makes broker bootstrap cheap.
  virtual void bulk_load(std::vector<entry> entries) {
    reserve(size() + entries.size());
    for (const entry& e : entries) insert(e.key, e.id);
  }
  // The smallest-key entry with key in [r.lo, r.hi], if any. This is the
  // run-probe primitive: two descents regardless of the run's extent.
  [[nodiscard]] virtual std::optional<entry> first_in(const range_type& r) const = 0;
  // Same, with a probe-locality cursor (see probe_hint). The default ignores
  // the hint and forwards to first_in(r).
  [[nodiscard]] virtual std::optional<entry> first_in(const range_type& r,
                                                      probe_hint* hint) const {
    (void)hint;
    return first_in(r);
  }

  // Receiver for probe_frontier answers. Non-owning: implementations live on
  // the caller's stack for the duration of one sweep.
  struct frontier_sink {
    // Called once per frontier range, in frontier order. `hit` points at the
    // smallest-key entry inside frontier[index] (exactly what
    // first_in(frontier[index]) would return), or is nullptr when the range
    // holds no entry; the pointee is only valid for the duration of the
    // call. Return false to stop the sweep (remaining ranges are not
    // visited), true to continue.
    virtual bool on_probe(std::size_t index, const entry* hit) = 0;

   protected:
    ~frontier_sink() = default;
  };

  // Batched run probing: answers a whole level frontier in one pass.
  //
  // Contract:
  //   * `frontier` must be sorted ascending by lo (non-decreasing is
  //     sufficient; the merged frontiers the query plan produces are
  //     strictly ascending and disjoint). An unsorted frontier is a contract
  //     violation and may return wrong answers.
  //   * The sink is invoked once per range in frontier order — index 0
  //     first — and each answer is byte-identical to first_in(frontier[i]):
  //     the smallest-(key, id) entry with key in [lo_i, hi_i], if any.
  //   * The sweep stops early iff the sink returns false.
  //   * No allocation: backends keep their sweep state (cursor or descent
  //     fingers) on the stack.
  //
  // The default answers each range with an independent first_in() — the
  // reference semantics the overrides must match. Backends override it to
  // resume instead of restarting: the sorted vector carries one galloping
  // lower-bound cursor across ranges (monotone lows mean the bound can only
  // move right), the skip list resumes its top-down descent from per-level
  // fingers and never re-enters the list above the last node touched.
  virtual void probe_frontier(std::span<const range_type> frontier, frontier_sink& sink) const {
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const std::optional<entry> hit = first_in(frontier[i]);
      if (!sink.on_probe(i, hit.has_value() ? &*hit : nullptr)) return;
    }
  }
  // Number of entries with key in [r.lo, r.hi].
  [[nodiscard]] virtual std::uint64_t count_in(const range_type& r) const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  // In-order traversal.
  virtual void for_each(const std::function<void(const entry&)>& fn) const = 0;
  // Bytes this array owns, counting structural overhead (vector capacity
  // including slack, skip-list node headers and link arrays), not just
  // payload. The audit that bytes-per-subscription tracking is built on.
  [[nodiscard]] virtual std::size_t memory_footprint() const = 0;

  // Maintenance hook: backends with deferred work (tombstone compaction,
  // tier flushes/promotions) apply their policy here; others no-op. Called
  // by query_plan at the end of each query and by churn drivers between
  // epochs. Never changes the visible entry set — only its physical layout.
  virtual void maintain() {}
  // Cumulative tombstone/compaction ledger (see maintenance_counters);
  // zero for backends that erase in place.
  [[nodiscard]] virtual maintenance_counters maintenance() const { return {}; }
  // Compaction-policy knob: compact a region once its live fraction drops
  // below `min_live_fraction` (clamped to [0, 1]). 1.0 degenerates to eager
  // per-erase compaction — the "naive erase" baseline BM_Churn compares
  // against; 0.0 never compacts. Backends without tombstones ignore it.
  virtual void set_compaction_policy(double min_live_fraction) { (void)min_live_fraction; }
};

using sfc_array = basic_sfc_array<u512>;

extern template class basic_sfc_array<std::uint64_t>;
extern template class basic_sfc_array<u128>;
extern template class basic_sfc_array<u512>;

// Factory covering the built-in backends at the reference (u512) width.
std::unique_ptr<sfc_array> make_sfc_array(sfc_array_kind kind);

// Same, at an explicit key width.
template <class K>
std::unique_ptr<basic_sfc_array<K>> make_basic_sfc_array(sfc_array_kind kind);

extern template std::unique_ptr<basic_sfc_array<std::uint64_t>> make_basic_sfc_array(
    sfc_array_kind);
extern template std::unique_ptr<basic_sfc_array<u128>> make_basic_sfc_array(sfc_array_kind);
extern template std::unique_ptr<basic_sfc_array<u512>> make_basic_sfc_array(sfc_array_kind);

}  // namespace subcover
