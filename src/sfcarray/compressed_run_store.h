// compressed_run_store — the cold tier of the hot/cold SFC-array tiering
// (Succinct Coverage Oracles direction, PAPERS.md arXiv:0912.2404).
//
// At production scale a broker holds one covering index per outgoing link,
// and memory — not CPU — becomes the wall: a probe-ready backend spends a
// full key (up to 64 bytes at u512 width) plus structural overhead (skip
// list node headers and link arrays, or sorted-vector slack) on every
// subscription. But the entries are *sorted* curve keys, and sorted keys on
// a space filling curve cluster (that is the whole point of the curve), so
// the gap between consecutive keys is tiny compared to the keys themselves.
// This store keeps the entries delta-encoded: blocks of ~block_entries
// entries, each block storing its first (key, id) as varints and every
// subsequent entry as varint(key gap) + varint(id). A per-block summary —
// the bounding run envelope [lo, hi], the entry count, and the first id —
// lives decoded above the blocks, so a probe can answer "definitely no
// entry in [r.lo, r.hi]" (and even "the answer is the block's first
// entry") from the summaries alone, without decoding a byte.
//
// The envelope endpoints are additionally mirrored into two contiguous key
// columns (env_lo_/env_hi_), so the summary filtering runs as lane scans
// through util/simd_kernels.h at the narrow widths: block assignment is a
// vectorized partition point over the hi column, a resumed frontier sweep
// rejects non-intersecting blocks with a batched first-geq scan (several
// envelopes per compare), and count_in classifies fully-contained blocks
// with one batched containment mask instead of per-block branches.
// Dispatch is process-wide (util/cpu_features.h; SUBCOVER_FORCE_SCALAR
// pins the kernels to their scalar backend). Answers are byte-identical
// at every tier.
//
// Invariants:
//   * Entries are globally sorted by (key, id); blocks partition them.
//   * A block closes only at a key boundary (a run of equal keys never
//     spans two blocks), so block envelopes are strictly disjoint and
//     key-ordered: summaries_[i].hi < summaries_[i+1].lo. This is what
//     makes summary binary search and key-only block assignment correct.
//   * Probes are answered exactly as a resident basic_sfc_array holding the
//     same entries would answer them (first_in: the smallest-(key, id)
//     entry in range) — the tiered array's byte-identity contract rests on
//     this.
//   * Erase is deferred: a tombstoned occurrence stays encoded in its block
//     but is listed in a sorted graveyard and counted in the block's
//     summary (summary.dead). Every probe is graveyard-blind-correct — the
//     summary fast paths only fire on blocks with dead == 0, and decode
//     paths cancel dead occurrences multiset-style — and a block is
//     rewritten (compacted) only when its live fraction drops below the
//     set_min_live_fraction threshold.
//
// Mutability/concurrency: probes are logically const but maintain a decode
// cache (one block's entries, reused — allocation-free once the cache has
// grown to the largest block) and bump the caller's tier_counters. Like
// query_plan scratch, a store is single-threaded by contract.
//
// The codec is templated on the key type via key_traits<K> (u64/u128/u512
// specializations all compile to the same 7-bit LEB128 loop over their
// word ops); detail::put_varint/get_varint are exposed for the roundtrip
// property tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sfcarray/sfc_array.h"
#include "util/key_traits.h"

namespace subcover {

// Physical cold-tier probe work, the "how was it answered" ledger the
// tiered array keeps cumulatively and query_plan diffs per query into
// query_stats (tier_* fields) — and from there covering_check_stats and
// network_metrics aggregate it per covering check / per network.
struct tier_counters {
  // Probes that had to consult the cold tier at all (cold tier non-empty).
  std::uint64_t cold_probes = 0;
  // Cold consults answered from the block summaries alone — either "no
  // block envelope intersects the range" or "the range covers the block's
  // lower endpoint, so the summary's (lo, first_id) is the answer". No
  // bytes were decoded.
  std::uint64_t summary_answers = 0;
  // Blocks varint-decoded into the scratch cache.
  std::uint64_t blocks_decoded = 0;
  // Probes whose final (merged) answer came from the cold tier.
  std::uint64_t cold_hits = 0;
  // Entries moved cold -> hot (recently-hit working set) and hot -> cold
  // (capacity flushes) by the tiering policy.
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
};

namespace detail {

// LEB128: 7 value bits per byte, low bits first, high bit = continuation.
// Works for any key type with key_traits (and plain uint64_t ids).
template <class K>
inline void put_varint(std::vector<std::uint8_t>& out, K v) {
  using T = key_traits<K>;
  while (T::bit_width(v) > 7) {
    out.push_back(static_cast<std::uint8_t>((T::low64(v) & 0x7fU) | 0x80U));
    v = v >> 7;
  }
  out.push_back(static_cast<std::uint8_t>(T::low64(v) & 0x7fU));
}

template <class K>
inline K get_varint(const std::uint8_t*& p) {
  using T = key_traits<K>;
  K v = T::zero();
  int shift = 0;
  while (true) {
    const std::uint8_t b = *p++;
    v = v | (K{static_cast<std::uint64_t>(b & 0x7fU)} << shift);
    if ((b & 0x80U) == 0) return v;
    shift += 7;
  }
}

}  // namespace detail

template <class K>
class compressed_run_store {
 public:
  using entry = typename basic_sfc_array<K>::entry;
  using range_type = basic_key_range<K>;

  // `block_entries` is the target block size; blocks only close at key
  // boundaries, so a long run of duplicate keys can exceed it.
  explicit compressed_run_store(std::size_t block_entries = 64);

  // Merges a batch of entries (any order; sorted internally) into the
  // store. Blocks the batch does not touch are kept verbatim; touched
  // blocks are decoded, merged and re-encoded (dropping any tombstones they
  // carried — a rewrite is a compaction for free).
  void merge_in(std::vector<entry> items);
  // Removes one (key, id) occurrence; false if absent. Deferred: the
  // occurrence is recorded in a sorted graveyard and the block's summary
  // dead-count is bumped — no re-encode, no block splice, and no decode
  // beyond the one target block (served from the cache when the caller
  // erases in key order). A block is rewritten only when its live fraction
  // drops below the compaction threshold (set_min_live_fraction, default
  // 0.5), so sustained cold-tier churn costs O(log blocks) per erase plus
  // one single-block rewrite per block_entries/2 erases.
  bool erase(const K& key, std::uint64_t id);

  // The smallest-(key, id) entry with key in [r.lo, r.hi] — exactly what a
  // resident array holding these entries would return from first_in.
  // `block_hint` (optional) resumes an ascending sweep: pass a size_t
  // initialized to npos for the first probe of a sweep, keep passing the
  // same variable for the following probes (their lows must be
  // non-decreasing, the frontier contract). Counters are bumped on `c`
  // when non-null.
  [[nodiscard]] std::optional<entry> first_in(const range_type& r, std::size_t* block_hint,
                                              tier_counters* c) const;
  [[nodiscard]] std::uint64_t count_in(const range_type& r) const;

  // Appends every entry in (key, id) order to `out`.
  void decode_all(std::vector<entry>* out) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  // Encoded payload bytes (the compression headline).
  [[nodiscard]] std::size_t encoded_bytes() const;
  // Total owned bytes: payload + summaries + container overhead + the
  // decode cache. This is the number memory_footprint() audits sum.
  [[nodiscard]] std::size_t memory_footprint() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  // Compaction threshold for deferred erase (clamped to [0, 1]): a block is
  // rewritten once live/count drops below it. 1.0 = eager per-erase rewrite
  // (the naive baseline), 0.0 = never rewrite.
  void set_min_live_fraction(double f);
  // Cumulative tombstone/compaction ledger (tombstones_added, block
  // rewrites as compactions, tombstones_purged).
  [[nodiscard]] const maintenance_counters& maint() const { return maint_; }
  // Outstanding tombstones (graveyard entries not yet compacted away).
  [[nodiscard]] std::size_t tombstones() const { return dead_.size(); }

  // Verifies the block invariants (global (key, id) order, key-boundary
  // block closure, summary/payload agreement, graveyard/summary dead-count
  // agreement); throws std::logic_error on violation. Test hook.
  void check_invariants() const;

 private:
  struct summary {
    K lo{};                      // first key in the block (envelope low)
    K hi{};                      // last key in the block (envelope high)
    std::uint64_t first_id = 0;  // id of the first entry
    std::uint32_t count = 0;     // entries encoded in the block (incl. dead)
    std::uint32_t dead = 0;      // of those, tombstoned (graveyard) entries
  };
  struct block {
    std::vector<std::uint8_t> bytes;
  };

  // First block whose envelope high is >= key (i.e. the only block that
  // could contain `key`); blocks_.size() if none.
  [[nodiscard]] std::size_t block_geq(const K& key) const;
  // Rebuilds the env_lo_/env_hi_ columns from summaries_ after any block
  // mutation.
  void rebuild_envelopes();
  // Decodes block b into the scratch cache (no-op when already cached).
  const std::vector<entry>& decode(std::size_t b, tier_counters* c) const;
  // Encodes `items[from, to)` (sorted) as blocks appended to
  // `blocks`/`summaries`, closing blocks only at key boundaries.
  void encode_chunked(const std::vector<entry>& items, std::size_t from, std::size_t to,
                      std::vector<block>* blocks, std::vector<summary>* summaries) const;
  void invalidate_cache() { cached_block_ = npos; }
  // Rewrites block b without its tombstones (drops the block when nothing
  // is live) and removes them from the graveyard.
  void compact_block(std::size_t b);
  // compact_block iff block b's live fraction is below the threshold.
  void maybe_compact_block(std::size_t b);

  std::size_t block_entries_;
  std::size_t size_ = 0;  // live entries (encoded minus graveyard)
  std::vector<block> blocks_;
  std::vector<summary> summaries_;
  // Tombstoned occurrences, sorted by (key, id) — a multiset: each element
  // cancels exactly one equal encoded entry. Equal keys never span blocks,
  // so a block's dead entries form one contiguous graveyard span.
  std::vector<entry> dead_;
  double min_live_fraction_ = 0.5;
  maintenance_counters maint_;
  // Envelope key columns mirroring summaries_ (env_lo_[b] == summaries_[b].lo,
  // env_hi_[b] == summaries_[b].hi): the contiguous lanes the vectorized
  // summary scans walk. Kept in sync by rebuild_envelopes().
  std::vector<K> env_lo_;
  std::vector<K> env_hi_;
  // Decode scratch: one block's entries, reused across probes.
  mutable std::vector<entry> cache_;
  mutable std::size_t cached_block_ = npos;
  // Containment-mask scratch for count_in, reused across calls.
  mutable std::vector<std::uint8_t> contained_;
};

extern template class compressed_run_store<std::uint64_t>;
extern template class compressed_run_store<u128>;
extern template class compressed_run_store<u512>;

}  // namespace subcover
