// Sorted-vector implementation of the SFC array: contiguous storage with
// binary-search probes. O(n) insert, amortized O(log n) erase (tombstone +
// periodic compaction, below), O(log n) first_in — the right trade-off for
// mostly-static subscription tables and the reference oracle for the skip
// list in tests.
//
// Erase marks a tombstone instead of splicing the vector: a parallel dead
// bitmap (lazily allocated — insert/query-only workloads pay nothing) keeps
// the entry column contiguous for the SIMD lower-bound kernels, and probes
// skip dead slots after the bound. When the live fraction drops below the
// compaction threshold (set_compaction_policy, default 0.5), the next erase
// or maintain() compacts the vector in one stable pass — so sustained churn
// costs amortized O(log n) per erase plus O(n) once per n/2 erases, instead
// of an O(n) memmove per erase. Tombstones are invisible to every read path
// (first_in, probe_frontier, count_in, for_each, size); only
// memory_footprint and the maintenance_counters ledger see them.
//
// This backend exploits both bulk-population hooks: bulk_load sorts the
// batch once and merges it with the existing entries (O((n + m) + m log m)
// instead of m inserts of O(n) each), and the probe_hint overload of
// first_in gallops from the previous probe position, so a sequence of
// probes at nearby keys costs O(log distance) instead of O(log n) each.
//
// probe_frontier answers a sorted level frontier with a single merged
// galloping sweep: the lower-bound position of each range resumes from the
// previous range's answer (lows are monotone, so the bound can only move
// right — no restart from index 0), making M probes one left-to-right pass
// whose total cost is O(M + log n + log of the total distance swept).
//
// Probe-side lower bounds are key-only (query probes carry id 0, so the
// (key, id) order degenerates to the key order) and run through the
// vectorized partition-point kernel of util/simd_kernels.h at u64 width —
// the 16-byte entries are exactly the interleaved {key, id} pair layout the
// kernel walks. Dispatch is process-wide (util/cpu_features.h).
#pragma once

#include <vector>

#include "sfcarray/sfc_array.h"

namespace subcover {

template <class K>
class basic_sorted_vector_array final : public basic_sfc_array<K> {
 public:
  using base = basic_sfc_array<K>;
  using entry = typename base::entry;
  using range_type = typename base::range_type;
  using probe_hint = typename base::probe_hint;
  using frontier_sink = typename base::frontier_sink;

  basic_sorted_vector_array() = default;

  using base::first_in;

  void insert(const K& key, std::uint64_t id) override;
  bool erase(const K& key, std::uint64_t id) override;
  std::size_t erase_batch(const std::vector<entry>& entries) override;
  void reserve(std::size_t n) override;
  void bulk_load(std::vector<entry> entries) override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r) const override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r,
                                              probe_hint* hint) const override;
  void probe_frontier(std::span<const range_type> frontier, frontier_sink& sink) const override;
  [[nodiscard]] std::uint64_t count_in(const range_type& r) const override;
  [[nodiscard]] std::size_t size() const override;
  void for_each(const std::function<void(const entry&)>& fn) const override;
  [[nodiscard]] std::size_t memory_footprint() const override;
  void maintain() override;
  [[nodiscard]] maintenance_counters maintenance() const override { return maint_; }
  void set_compaction_policy(double min_live_fraction) override;

  // Outstanding tombstones (dead slots not yet compacted). Test hook.
  [[nodiscard]] std::size_t tombstones() const { return tombstones_; }

 private:
  // True when slot i holds a tombstone. dead_ is lazily allocated: empty
  // means "no tombstones anywhere" (the invariant is dead_.empty() ||
  // dead_.size() == entries_.size()).
  [[nodiscard]] bool is_dead(std::size_t i) const { return !dead_.empty() && dead_[i] != 0; }
  // First live slot at or after i (entries_.size() if none).
  [[nodiscard]] std::size_t skip_dead(std::size_t i) const;
  // Marks one live (key, id) occurrence dead; false if absent.
  bool mark_dead(const K& key, std::uint64_t id);
  // Compacts iff the live fraction is below the policy threshold.
  void maybe_compact();
  // Stable-removes every dead slot and drops the bitmap.
  void compact();

  std::vector<entry> entries_;       // sorted by (key, id), dead slots included
  std::vector<std::uint8_t> dead_;   // parallel tombstone bitmap (lazy)
  std::size_t tombstones_ = 0;       // set bits in dead_
  double min_live_fraction_ = 0.5;   // compaction threshold
  maintenance_counters maint_;
};

using sorted_vector_array = basic_sorted_vector_array<u512>;

extern template class basic_sorted_vector_array<std::uint64_t>;
extern template class basic_sorted_vector_array<u128>;
extern template class basic_sorted_vector_array<u512>;

}  // namespace subcover
