// Sorted-vector implementation of the SFC array: contiguous storage with
// binary-search probes. O(n) insert/erase, O(log n) first_in — the right
// trade-off for mostly-static subscription tables and the reference oracle
// for the skip list in tests.
//
// This backend exploits both bulk-population hooks: bulk_load sorts the
// batch once and merges it with the existing entries (O((n + m) + m log m)
// instead of m inserts of O(n) each), and the probe_hint overload of
// first_in gallops from the previous probe position, so a sequence of
// probes at nearby keys costs O(log distance) instead of O(log n) each.
//
// probe_frontier answers a sorted level frontier with a single merged
// galloping sweep: the lower-bound position of each range resumes from the
// previous range's answer (lows are monotone, so the bound can only move
// right — no restart from index 0), making M probes one left-to-right pass
// whose total cost is O(M + log n + log of the total distance swept).
//
// Probe-side lower bounds are key-only (query probes carry id 0, so the
// (key, id) order degenerates to the key order) and run through the
// vectorized partition-point kernel of util/simd_kernels.h at u64 width —
// the 16-byte entries are exactly the interleaved {key, id} pair layout the
// kernel walks. Dispatch is process-wide (util/cpu_features.h).
#pragma once

#include <vector>

#include "sfcarray/sfc_array.h"

namespace subcover {

template <class K>
class basic_sorted_vector_array final : public basic_sfc_array<K> {
 public:
  using base = basic_sfc_array<K>;
  using entry = typename base::entry;
  using range_type = typename base::range_type;
  using probe_hint = typename base::probe_hint;
  using frontier_sink = typename base::frontier_sink;

  basic_sorted_vector_array() = default;

  using base::first_in;

  void insert(const K& key, std::uint64_t id) override;
  bool erase(const K& key, std::uint64_t id) override;
  void reserve(std::size_t n) override;
  void bulk_load(std::vector<entry> entries) override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r) const override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r,
                                              probe_hint* hint) const override;
  void probe_frontier(std::span<const range_type> frontier, frontier_sink& sink) const override;
  [[nodiscard]] std::uint64_t count_in(const range_type& r) const override;
  [[nodiscard]] std::size_t size() const override;
  void for_each(const std::function<void(const entry&)>& fn) const override;
  [[nodiscard]] std::size_t memory_footprint() const override;

 private:
  std::vector<entry> entries_;  // sorted by (key, id)
};

using sorted_vector_array = basic_sorted_vector_array<u512>;

extern template class basic_sorted_vector_array<std::uint64_t>;
extern template class basic_sorted_vector_array<u128>;
extern template class basic_sorted_vector_array<u512>;

}  // namespace subcover
