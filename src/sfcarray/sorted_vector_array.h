// Sorted-vector implementation of the SFC array: contiguous storage with
// binary-search probes. O(n) insert/erase, O(log n) first_in — the right
// trade-off for mostly-static subscription tables and the reference oracle
// for the skip list in tests.
//
// This backend exploits both bulk-population hooks: bulk_load sorts the
// batch once and merges it with the existing entries (O((n + m) + m log m)
// instead of m inserts of O(n) each), and the probe_hint overload of
// first_in gallops from the previous probe position, so a sequence of
// probes at nearby keys costs O(log distance) instead of O(log n) each.
#pragma once

#include <vector>

#include "sfcarray/sfc_array.h"

namespace subcover {

class sorted_vector_array final : public sfc_array {
 public:
  sorted_vector_array() = default;

  using sfc_array::first_in;

  void insert(const u512& key, std::uint64_t id) override;
  bool erase(const u512& key, std::uint64_t id) override;
  void reserve(std::size_t n) override;
  void bulk_load(std::vector<entry> entries) override;
  [[nodiscard]] std::optional<entry> first_in(const key_range& r) const override;
  [[nodiscard]] std::optional<entry> first_in(const key_range& r,
                                              probe_hint* hint) const override;
  [[nodiscard]] std::uint64_t count_in(const key_range& r) const override;
  [[nodiscard]] std::size_t size() const override;
  void for_each(const std::function<void(const entry&)>& fn) const override;

 private:
  std::vector<entry> entries_;  // sorted by (key, id)
};

}  // namespace subcover
