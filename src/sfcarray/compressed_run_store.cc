#include "sfcarray/compressed_run_store.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "util/simd_kernels.h"

namespace subcover {

namespace {

template <class E>
bool entry_less(const E& a, const E& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.id < b.id;
}

}  // namespace

template <class K>
compressed_run_store<K>::compressed_run_store(std::size_t block_entries)
    : block_entries_(block_entries == 0 ? 1 : block_entries) {}

template <class K>
void compressed_run_store<K>::encode_chunked(const std::vector<entry>& items, std::size_t from,
                                             std::size_t to, std::vector<block>* blocks,
                                             std::vector<summary>* summaries) const {
  std::size_t b = from;
  while (b < to) {
    std::size_t e = std::min(b + block_entries_, to);
    // Never split a run of equal keys across blocks: extend until the next
    // entry starts a new key.
    while (e < to && items[e].key == items[e - 1].key) ++e;

    block blk;
    summary s;
    s.lo = items[b].key;
    s.hi = items[e - 1].key;
    s.first_id = items[b].id;
    s.count = static_cast<std::uint32_t>(e - b);
    detail::put_varint(blk.bytes, items[b].key);
    detail::put_varint(blk.bytes, items[b].id);
    for (std::size_t i = b + 1; i < e; ++i) {
      detail::put_varint(blk.bytes, static_cast<K>(items[i].key - items[i - 1].key));
      detail::put_varint(blk.bytes, items[i].id);
    }
    blk.bytes.shrink_to_fit();
    blocks->push_back(std::move(blk));
    summaries->push_back(s);
    b = e;
  }
}

template <class K>
void compressed_run_store<K>::rebuild_envelopes() {
  const std::size_t n = summaries_.size();
  env_lo_.resize(n);
  env_hi_.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    env_lo_[b] = summaries_[b].lo;
    env_hi_[b] = summaries_[b].hi;
  }
}

template <class K>
std::size_t compressed_run_store<K>::block_geq(const K& key) const {
  // Envelope his are strictly increasing, so block assignment is a plain
  // partition point over the hi column — vectorized at u64 width, a
  // column-local (cache-dense) binary search at the wide widths.
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    return simd::lower_bound_u64(env_hi_.data(), env_hi_.size(), key);
  } else {
    const auto it = std::lower_bound(env_hi_.begin(), env_hi_.end(), key);
    return static_cast<std::size_t>(it - env_hi_.begin());
  }
}

template <class K>
const std::vector<typename compressed_run_store<K>::entry>& compressed_run_store<K>::decode(
    std::size_t b, tier_counters* c) const {
  if (cached_block_ == b) return cache_;
  if (c != nullptr) ++c->blocks_decoded;
  const summary& s = summaries_[b];
  cache_.clear();
  cache_.reserve(s.count);
  const std::uint8_t* p = blocks_[b].bytes.data();
  entry e;
  e.key = detail::get_varint<K>(p);
  e.id = detail::get_varint<std::uint64_t>(p);
  cache_.push_back(e);
  for (std::uint32_t i = 1; i < s.count; ++i) {
    e.key = static_cast<K>(e.key + detail::get_varint<K>(p));
    e.id = detail::get_varint<std::uint64_t>(p);
    cache_.push_back(e);
  }
  cached_block_ = b;
  return cache_;
}

template <class K>
void compressed_run_store<K>::merge_in(std::vector<entry> items) {
  if (items.empty()) return;
  std::sort(items.begin(), items.end(), entry_less<entry>);
  const std::size_t n = items.size();

  if (blocks_.empty()) {
    encode_chunked(items, 0, n, &blocks_, &summaries_);
    size_ += n;
    rebuild_envelopes();
    return;
  }

  std::vector<block> nb;
  std::vector<summary> ns;
  nb.reserve(blocks_.size() + n / block_entries_ + 1);
  ns.reserve(nb.capacity());
  std::vector<entry> merged;  // scratch for blocks the batch touches
  std::vector<entry> live;    // scratch: touched blocks minus their tombstones

  std::size_t i = 0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    // Batch entries strictly below this block's envelope become fresh
    // blocks of their own (their keys fall in the gap between envelopes).
    const std::size_t gap_from = i;
    while (i < n && items[i].key < summaries_[b].lo) ++i;
    if (i > gap_from) encode_chunked(items, gap_from, i, &nb, &ns);

    if (i < n && items[i].key <= summaries_[b].hi) {
      // The batch lands inside this block: decode, merge, re-encode. A
      // rewrite is a compaction for free — the block's tombstones (if any)
      // are dropped from both the payload and the graveyard on the way.
      std::size_t j = i;
      while (j < n && items[j].key <= summaries_[b].hi) ++j;
      const std::vector<entry>& old = decode(b, nullptr);
      merged.clear();
      merged.reserve(old.size() + (j - i));
      if (summaries_[b].dead != 0) {
        const auto d_lo = std::lower_bound(dead_.begin(), dead_.end(),
                                           entry{summaries_[b].lo, 0}, entry_less<entry>);
        const auto d_hi =
            std::upper_bound(d_lo, dead_.end(), summaries_[b].hi,
                             [](const K& k, const entry& e) { return k < e.key; });
        live.clear();
        live.reserve(old.size() - static_cast<std::size_t>(d_hi - d_lo));
        std::set_difference(old.begin(), old.end(), d_lo, d_hi, std::back_inserter(live),
                            entry_less<entry>);
        maint_.tombstones_purged += static_cast<std::uint64_t>(d_hi - d_lo);
        dead_.erase(d_lo, d_hi);
        std::merge(live.begin(), live.end(), items.begin() + static_cast<std::ptrdiff_t>(i),
                   items.begin() + static_cast<std::ptrdiff_t>(j), std::back_inserter(merged),
                   entry_less<entry>);
      } else {
        std::merge(old.begin(), old.end(), items.begin() + static_cast<std::ptrdiff_t>(i),
                   items.begin() + static_cast<std::ptrdiff_t>(j), std::back_inserter(merged),
                   entry_less<entry>);
      }
      encode_chunked(merged, 0, merged.size(), &nb, &ns);
      i = j;
    } else {
      // Untouched: move the encoded bytes verbatim.
      nb.push_back(std::move(blocks_[b]));
      ns.push_back(summaries_[b]);
    }
  }
  if (i < n) encode_chunked(items, i, n, &nb, &ns);

  blocks_ = std::move(nb);
  summaries_ = std::move(ns);
  size_ += n;
  invalidate_cache();
  rebuild_envelopes();
}

template <class K>
void compressed_run_store<K>::set_min_live_fraction(double f) {
  min_live_fraction_ = std::clamp(f, 0.0, 1.0);
}

template <class K>
bool compressed_run_store<K>::erase(const K& key, std::uint64_t id) {
  const std::size_t b = block_geq(key);
  if (b >= blocks_.size() || summaries_[b].lo > key) return false;
  // Presence check needs the one target block decoded (served from the
  // cache when erases arrive in key order) — but no re-encode and no block
  // splice: the occurrence is tombstoned in the graveyard instead.
  const std::vector<entry>& es = decode(b, nullptr);
  const entry target{key, id};
  const auto [e_lo, e_hi] = std::equal_range(es.begin(), es.end(), target, entry_less<entry>);
  if (e_lo == e_hi) return false;
  const auto [d_lo, d_hi] =
      std::equal_range(dead_.begin(), dead_.end(), target, entry_less<entry>);
  if (e_hi - e_lo <= d_hi - d_lo) return false;  // every copy already dead
  dead_.insert(d_hi, target);
  ++summaries_[b].dead;
  --size_;
  ++maint_.tombstones_added;
  maybe_compact_block(b);
  return true;
}

template <class K>
void compressed_run_store<K>::maybe_compact_block(std::size_t b) {
  const summary& s = summaries_[b];
  if (s.dead == 0) return;
  const std::uint32_t live = s.count - s.dead;
  if (static_cast<double>(live) < min_live_fraction_ * static_cast<double>(s.count)) {
    compact_block(b);
  }
}

template <class K>
void compressed_run_store<K>::compact_block(std::size_t b) {
  const summary s = summaries_[b];
  if (s.dead == 0) return;
  // The graveyard span of block b: equal keys never span blocks, so it is
  // exactly the dead entries with key in [s.lo, s.hi].
  const auto d_lo =
      std::lower_bound(dead_.begin(), dead_.end(), entry{s.lo, 0}, entry_less<entry>);
  const auto d_hi = std::upper_bound(
      d_lo, dead_.end(), s.hi, [](const K& k, const entry& e) { return k < e.key; });
  std::vector<entry> rest;
  rest.reserve(s.count - s.dead);
  {
    // Multiset difference: each graveyard element cancels one encoded copy.
    const std::vector<entry>& old = decode(b, nullptr);
    std::set_difference(old.begin(), old.end(), d_lo, d_hi, std::back_inserter(rest),
                        entry_less<entry>);
  }
  dead_.erase(d_lo, d_hi);
  maint_.tombstones_purged += s.dead;
  ++maint_.compactions;
  invalidate_cache();
  blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(b));
  summaries_.erase(summaries_.begin() + static_cast<std::ptrdiff_t>(b));
  if (!rest.empty()) {
    std::vector<block> nb;
    std::vector<summary> ns;
    encode_chunked(rest, 0, rest.size(), &nb, &ns);
    blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(b),
                   std::make_move_iterator(nb.begin()), std::make_move_iterator(nb.end()));
    summaries_.insert(summaries_.begin() + static_cast<std::ptrdiff_t>(b), ns.begin(), ns.end());
  }
  rebuild_envelopes();
}

template <class K>
std::optional<typename compressed_run_store<K>::entry> compressed_run_store<K>::first_in(
    const range_type& r, std::size_t* block_hint, tier_counters* c) const {
  if (blocks_.empty() || r.lo > r.hi) return std::nullopt;

  std::size_t b;
  if (block_hint != nullptr && *block_hint != npos) {
    // Resumed sweep: lows are non-decreasing across calls, so the first
    // block with hi >= r.lo can only be at or after the previous answer.
    // The forward scan runs over the contiguous hi column — several
    // envelopes per compare at the narrow widths.
    if constexpr (std::is_same_v<K, std::uint64_t>) {
      b = simd::first_geq_u64(env_hi_.data(), *block_hint, env_hi_.size(), r.lo);
    } else if constexpr (std::is_same_v<K, u128>) {
      b = simd::first_geq_u128(env_hi_.data(), *block_hint, env_hi_.size(), r.lo);
    } else {
      b = *block_hint;
      while (b < env_hi_.size() && env_hi_[b] < r.lo) ++b;
    }
  } else {
    b = block_geq(r.lo);
  }
  if (block_hint != nullptr) *block_hint = b;

  if (b >= summaries_.size() || summaries_[b].lo > r.hi) {
    // The range falls past the last envelope or inside an envelope gap:
    // answered negative from the summaries alone.
    if (c != nullptr) ++c->summary_answers;
    return std::nullopt;
  }
  // Walk the intersecting blocks until a live answer or the range is
  // exhausted. Without tombstones this visits exactly one block (the old
  // single-block fast path, byte-identical counters included); a block
  // whose range-portion is fully tombstoned spills into its successor.
  bool first_block = true;
  for (; b < summaries_.size() && summaries_[b].lo <= r.hi; ++b, first_block = false) {
    const summary& s = summaries_[b];
    if (s.dead == 0 && r.lo <= s.lo) {
      // The range covers the lower endpoint of an all-live block, so the
      // block's first entry — already spelled out in the summary — is the
      // answer. Only counted as a summary answer when nothing was decoded.
      if (c != nullptr && first_block) ++c->summary_answers;
      return entry{s.lo, s.first_id};
    }
    // r.lo lands strictly inside the block (first block only — later
    // blocks start past r.lo) or the block carries tombstones; decode and
    // binary search, cancelling dead occurrences multiset-style against
    // the block's graveyard span.
    const std::vector<entry>& es = decode(b, c);
    auto it = std::lower_bound(es.begin(), es.end(), entry{r.lo, 0}, entry_less<entry>);
    auto dit = s.dead == 0
                   ? dead_.end()
                   : (it == es.end()
                          ? dead_.end()
                          : std::lower_bound(dead_.begin(), dead_.end(), *it,
                                             entry_less<entry>));
    while (it != es.end()) {
      if (it->key > r.hi) return std::nullopt;
      while (dit != dead_.end() && entry_less(*dit, *it)) ++dit;
      if (dit != dead_.end() && *dit == *it) {
        // This graveyard element cancels this occurrence.
        ++dit;
        ++it;
        continue;
      }
      return *it;
    }
    // Every candidate in this block was dead; fall through to the next
    // intersecting block.
  }
  return std::nullopt;
}

template <class K>
std::uint64_t compressed_run_store<K>::count_in(const range_type& r) const {
  if (blocks_.empty() || r.lo > r.hi) return 0;
  // Intersecting blocks form the contiguous window [b0, b1): b0 is the
  // first block whose envelope reaches r.lo, b1 the first whose low is past
  // r.hi. Classify the whole window with one batched containment mask (at
  // u64 width), then only partially-overlapped blocks decode.
  const std::size_t b0 = block_geq(r.lo);
  std::size_t b1;
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    b1 = r.hi == std::numeric_limits<std::uint64_t>::max()
             ? env_lo_.size()
             : simd::lower_bound_u64(env_lo_.data(), env_lo_.size(), r.hi + 1);
  } else {
    const auto it = std::upper_bound(env_lo_.begin(), env_lo_.end(), r.hi);
    b1 = static_cast<std::size_t>(it - env_lo_.begin());
  }
  if (b0 >= b1) return 0;

  const std::size_t w = b1 - b0;
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    if (contained_.size() < w) contained_.resize(w);
    simd::contained_mask_u64(env_lo_.data() + b0, env_hi_.data() + b0, w, r.lo, r.hi,
                             contained_.data());
  } else {
    if (contained_.size() < w) contained_.resize(w);
    for (std::size_t i = 0; i < w; ++i) {
      contained_[i] = (r.lo <= env_lo_[b0 + i] && env_hi_[b0 + i] <= r.hi) ? 1 : 0;
    }
  }

  std::uint64_t total = 0;
  for (std::size_t b = b0; b < b1; ++b) {
    if (contained_[b - b0] != 0) {
      total += summaries_[b].count;  // fully contained: the summary already knows
      continue;
    }
    const std::vector<entry>& es = decode(b, nullptr);
    auto lo = std::lower_bound(es.begin(), es.end(), entry{r.lo, 0}, entry_less<entry>);
    auto hi = std::upper_bound(lo, es.end(), r.hi,
                               [](const K& k, const entry& e) { return k < e.key; });
    total += static_cast<std::uint64_t>(hi - lo);
  }
  if (!dead_.empty()) {
    // The raw walk counted encoded entries, tombstones included (summary
    // counts and block payloads both carry them). Every dead occurrence
    // with a key in range was counted exactly once, so one graveyard range
    // count corrects the total — the regression the soak test pins.
    const auto d_lo =
        std::lower_bound(dead_.begin(), dead_.end(), entry{r.lo, 0}, entry_less<entry>);
    const auto d_hi = std::upper_bound(
        d_lo, dead_.end(), r.hi, [](const K& k, const entry& e) { return k < e.key; });
    total -= static_cast<std::uint64_t>(d_hi - d_lo);
  }
  return total;
}

template <class K>
void compressed_run_store<K>::decode_all(std::vector<entry>* out) const {
  out->reserve(out->size() + size_);
  auto dit = dead_.begin();
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const std::vector<entry>& es = decode(b, nullptr);
    if (summaries_[b].dead == 0) {
      out->insert(out->end(), es.begin(), es.end());
      continue;
    }
    // Multiset-cancel the block's graveyard span: blocks and graveyard are
    // both globally sorted, so one monotone cursor covers the whole walk.
    for (const entry& e : es) {
      if (dit != dead_.end() && *dit == e) {
        ++dit;
      } else {
        out->push_back(e);
      }
    }
  }
}

template <class K>
std::size_t compressed_run_store<K>::encoded_bytes() const {
  std::size_t total = 0;
  for (const block& b : blocks_) total += b.bytes.size();
  return total;
}

template <class K>
std::size_t compressed_run_store<K>::memory_footprint() const {
  std::size_t total = sizeof(*this);
  total += blocks_.capacity() * sizeof(block);
  for (const block& b : blocks_) total += b.bytes.capacity();
  total += summaries_.capacity() * sizeof(summary);
  total += env_lo_.capacity() * sizeof(K);
  total += env_hi_.capacity() * sizeof(K);
  total += cache_.capacity() * sizeof(entry);
  total += contained_.capacity();
  total += dead_.capacity() * sizeof(entry);
  return total;
}

template <class K>
void compressed_run_store<K>::check_invariants() const {
  if (blocks_.size() != summaries_.size()) {
    throw std::logic_error("compressed_run_store: blocks/summaries size mismatch");
  }
  if (env_lo_.size() != summaries_.size() || env_hi_.size() != summaries_.size()) {
    throw std::logic_error("compressed_run_store: envelope columns out of sync");
  }
  std::size_t total = 0;
  std::size_t total_dead = 0;
  bool have_prev = false;
  entry prev{};
  auto dit = dead_.begin();
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const summary& s = summaries_[b];
    if (s.count == 0) throw std::logic_error("compressed_run_store: empty block");
    if (s.dead > s.count) {
      throw std::logic_error("compressed_run_store: more tombstones than entries");
    }
    if (env_lo_[b] != s.lo || env_hi_[b] != s.hi) {
      throw std::logic_error("compressed_run_store: envelope column/summary mismatch");
    }
    if (have_prev && !(prev.key < s.lo)) {
      throw std::logic_error("compressed_run_store: envelopes not disjoint/ordered");
    }
    const std::vector<entry>& es = decode(b, nullptr);
    if (es.size() != s.count) throw std::logic_error("compressed_run_store: count mismatch");
    if (es.front().key != s.lo || es.back().key != s.hi || es.front().id != s.first_id) {
      throw std::logic_error("compressed_run_store: summary/payload mismatch");
    }
    std::uint32_t block_dead = 0;
    for (const entry& e : es) {
      if (have_prev && entry_less(e, prev)) {
        throw std::logic_error("compressed_run_store: entries out of order");
      }
      prev = e;
      have_prev = true;
      // The graveyard walks in lockstep with the payload: every dead
      // element must cancel an encoded occurrence of its own block.
      if (dit != dead_.end()) {
        if (entry_less(*dit, e)) {
          throw std::logic_error("compressed_run_store: graveyard entry without payload");
        }
        if (*dit == e) {
          ++dit;
          ++block_dead;
        }
      }
    }
    if (block_dead != s.dead) {
      throw std::logic_error("compressed_run_store: summary dead-count/graveyard mismatch");
    }
    total += es.size();
    total_dead += block_dead;
  }
  if (dit != dead_.end()) {
    throw std::logic_error("compressed_run_store: graveyard entry past last block");
  }
  if (!std::is_sorted(dead_.begin(), dead_.end(), entry_less<entry>)) {
    throw std::logic_error("compressed_run_store: graveyard out of order");
  }
  if (total != size_ + total_dead) throw std::logic_error("compressed_run_store: size mismatch");
}

template class compressed_run_store<std::uint64_t>;
template class compressed_run_store<u128>;
template class compressed_run_store<u512>;

}  // namespace subcover
