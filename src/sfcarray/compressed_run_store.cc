#include "sfcarray/compressed_run_store.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <type_traits>
#include <utility>

#include "util/simd_kernels.h"

namespace subcover {

namespace {

template <class E>
bool entry_less(const E& a, const E& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.id < b.id;
}

}  // namespace

template <class K>
compressed_run_store<K>::compressed_run_store(std::size_t block_entries)
    : block_entries_(block_entries == 0 ? 1 : block_entries) {}

template <class K>
void compressed_run_store<K>::encode_chunked(const std::vector<entry>& items, std::size_t from,
                                             std::size_t to, std::vector<block>* blocks,
                                             std::vector<summary>* summaries) const {
  std::size_t b = from;
  while (b < to) {
    std::size_t e = std::min(b + block_entries_, to);
    // Never split a run of equal keys across blocks: extend until the next
    // entry starts a new key.
    while (e < to && items[e].key == items[e - 1].key) ++e;

    block blk;
    summary s;
    s.lo = items[b].key;
    s.hi = items[e - 1].key;
    s.first_id = items[b].id;
    s.count = static_cast<std::uint32_t>(e - b);
    detail::put_varint(blk.bytes, items[b].key);
    detail::put_varint(blk.bytes, items[b].id);
    for (std::size_t i = b + 1; i < e; ++i) {
      detail::put_varint(blk.bytes, static_cast<K>(items[i].key - items[i - 1].key));
      detail::put_varint(blk.bytes, items[i].id);
    }
    blk.bytes.shrink_to_fit();
    blocks->push_back(std::move(blk));
    summaries->push_back(s);
    b = e;
  }
}

template <class K>
void compressed_run_store<K>::rebuild_envelopes() {
  const std::size_t n = summaries_.size();
  env_lo_.resize(n);
  env_hi_.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    env_lo_[b] = summaries_[b].lo;
    env_hi_[b] = summaries_[b].hi;
  }
}

template <class K>
std::size_t compressed_run_store<K>::block_geq(const K& key) const {
  // Envelope his are strictly increasing, so block assignment is a plain
  // partition point over the hi column — vectorized at u64 width, a
  // column-local (cache-dense) binary search at the wide widths.
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    return simd::lower_bound_u64(env_hi_.data(), env_hi_.size(), key);
  } else {
    const auto it = std::lower_bound(env_hi_.begin(), env_hi_.end(), key);
    return static_cast<std::size_t>(it - env_hi_.begin());
  }
}

template <class K>
const std::vector<typename compressed_run_store<K>::entry>& compressed_run_store<K>::decode(
    std::size_t b, tier_counters* c) const {
  if (cached_block_ == b) return cache_;
  if (c != nullptr) ++c->blocks_decoded;
  const summary& s = summaries_[b];
  cache_.clear();
  cache_.reserve(s.count);
  const std::uint8_t* p = blocks_[b].bytes.data();
  entry e;
  e.key = detail::get_varint<K>(p);
  e.id = detail::get_varint<std::uint64_t>(p);
  cache_.push_back(e);
  for (std::uint32_t i = 1; i < s.count; ++i) {
    e.key = static_cast<K>(e.key + detail::get_varint<K>(p));
    e.id = detail::get_varint<std::uint64_t>(p);
    cache_.push_back(e);
  }
  cached_block_ = b;
  return cache_;
}

template <class K>
void compressed_run_store<K>::merge_in(std::vector<entry> items) {
  if (items.empty()) return;
  std::sort(items.begin(), items.end(), entry_less<entry>);
  const std::size_t n = items.size();

  if (blocks_.empty()) {
    encode_chunked(items, 0, n, &blocks_, &summaries_);
    size_ += n;
    rebuild_envelopes();
    return;
  }

  std::vector<block> nb;
  std::vector<summary> ns;
  nb.reserve(blocks_.size() + n / block_entries_ + 1);
  ns.reserve(nb.capacity());
  std::vector<entry> merged;  // scratch for blocks the batch touches

  std::size_t i = 0;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    // Batch entries strictly below this block's envelope become fresh
    // blocks of their own (their keys fall in the gap between envelopes).
    const std::size_t gap_from = i;
    while (i < n && items[i].key < summaries_[b].lo) ++i;
    if (i > gap_from) encode_chunked(items, gap_from, i, &nb, &ns);

    if (i < n && items[i].key <= summaries_[b].hi) {
      // The batch lands inside this block: decode, merge, re-encode.
      std::size_t j = i;
      while (j < n && items[j].key <= summaries_[b].hi) ++j;
      const std::vector<entry>& old = decode(b, nullptr);
      merged.clear();
      merged.reserve(old.size() + (j - i));
      std::merge(old.begin(), old.end(), items.begin() + static_cast<std::ptrdiff_t>(i),
                 items.begin() + static_cast<std::ptrdiff_t>(j), std::back_inserter(merged),
                 entry_less<entry>);
      encode_chunked(merged, 0, merged.size(), &nb, &ns);
      i = j;
    } else {
      // Untouched: move the encoded bytes verbatim.
      nb.push_back(std::move(blocks_[b]));
      ns.push_back(summaries_[b]);
    }
  }
  if (i < n) encode_chunked(items, i, n, &nb, &ns);

  blocks_ = std::move(nb);
  summaries_ = std::move(ns);
  size_ += n;
  invalidate_cache();
  rebuild_envelopes();
}

template <class K>
bool compressed_run_store<K>::erase(const K& key, std::uint64_t id) {
  const std::size_t b = block_geq(key);
  if (b >= blocks_.size() || summaries_[b].lo > key) return false;
  const std::vector<entry>& old = decode(b, nullptr);
  const entry target{key, id};
  auto it = std::lower_bound(old.begin(), old.end(), target, entry_less<entry>);
  if (it == old.end() || it->key != key || it->id != id) return false;

  // Rebuild the block (or drop it) from the cache minus the hit. The cache
  // IS the decoded block, so edit a copy, not the cache in place.
  std::vector<entry> rest(old.begin(), it);
  rest.insert(rest.end(), it + 1, old.end());
  invalidate_cache();
  --size_;
  if (rest.empty()) {
    blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(b));
    summaries_.erase(summaries_.begin() + static_cast<std::ptrdiff_t>(b));
    rebuild_envelopes();
    return true;
  }
  std::vector<block> nb;
  std::vector<summary> ns;
  encode_chunked(rest, 0, rest.size(), &nb, &ns);
  // Splice the re-encoded block(s) in place of block b.
  blocks_.erase(blocks_.begin() + static_cast<std::ptrdiff_t>(b));
  summaries_.erase(summaries_.begin() + static_cast<std::ptrdiff_t>(b));
  blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(b),
                 std::make_move_iterator(nb.begin()), std::make_move_iterator(nb.end()));
  summaries_.insert(summaries_.begin() + static_cast<std::ptrdiff_t>(b), ns.begin(), ns.end());
  rebuild_envelopes();
  return true;
}

template <class K>
std::optional<typename compressed_run_store<K>::entry> compressed_run_store<K>::first_in(
    const range_type& r, std::size_t* block_hint, tier_counters* c) const {
  if (blocks_.empty() || r.lo > r.hi) return std::nullopt;

  std::size_t b;
  if (block_hint != nullptr && *block_hint != npos) {
    // Resumed sweep: lows are non-decreasing across calls, so the first
    // block with hi >= r.lo can only be at or after the previous answer.
    // The forward scan runs over the contiguous hi column — several
    // envelopes per compare at the narrow widths.
    if constexpr (std::is_same_v<K, std::uint64_t>) {
      b = simd::first_geq_u64(env_hi_.data(), *block_hint, env_hi_.size(), r.lo);
    } else if constexpr (std::is_same_v<K, u128>) {
      b = simd::first_geq_u128(env_hi_.data(), *block_hint, env_hi_.size(), r.lo);
    } else {
      b = *block_hint;
      while (b < env_hi_.size() && env_hi_[b] < r.lo) ++b;
    }
  } else {
    b = block_geq(r.lo);
  }
  if (block_hint != nullptr) *block_hint = b;

  if (b >= summaries_.size() || summaries_[b].lo > r.hi) {
    // The range falls past the last envelope or inside an envelope gap:
    // answered negative from the summaries alone.
    if (c != nullptr) ++c->summary_answers;
    return std::nullopt;
  }
  const summary& s = summaries_[b];
  if (r.lo <= s.lo) {
    // The range covers the block's lower endpoint, so the block's first
    // entry — already spelled out in the summary — is the global answer.
    if (c != nullptr) ++c->summary_answers;
    return entry{s.lo, s.first_id};
  }
  // r.lo lands strictly inside the block; decode and binary search. The
  // block's last key equals s.hi >= r.lo, so the bound always lands on an
  // in-block entry; it may still overshoot r.hi.
  const std::vector<entry>& es = decode(b, c);
  auto it = std::lower_bound(es.begin(), es.end(), entry{r.lo, 0}, entry_less<entry>);
  if (it == es.end() || it->key > r.hi) return std::nullopt;
  return *it;
}

template <class K>
std::uint64_t compressed_run_store<K>::count_in(const range_type& r) const {
  if (blocks_.empty() || r.lo > r.hi) return 0;
  // Intersecting blocks form the contiguous window [b0, b1): b0 is the
  // first block whose envelope reaches r.lo, b1 the first whose low is past
  // r.hi. Classify the whole window with one batched containment mask (at
  // u64 width), then only partially-overlapped blocks decode.
  const std::size_t b0 = block_geq(r.lo);
  std::size_t b1;
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    b1 = r.hi == std::numeric_limits<std::uint64_t>::max()
             ? env_lo_.size()
             : simd::lower_bound_u64(env_lo_.data(), env_lo_.size(), r.hi + 1);
  } else {
    const auto it = std::upper_bound(env_lo_.begin(), env_lo_.end(), r.hi);
    b1 = static_cast<std::size_t>(it - env_lo_.begin());
  }
  if (b0 >= b1) return 0;

  const std::size_t w = b1 - b0;
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    if (contained_.size() < w) contained_.resize(w);
    simd::contained_mask_u64(env_lo_.data() + b0, env_hi_.data() + b0, w, r.lo, r.hi,
                             contained_.data());
  } else {
    if (contained_.size() < w) contained_.resize(w);
    for (std::size_t i = 0; i < w; ++i) {
      contained_[i] = (r.lo <= env_lo_[b0 + i] && env_hi_[b0 + i] <= r.hi) ? 1 : 0;
    }
  }

  std::uint64_t total = 0;
  for (std::size_t b = b0; b < b1; ++b) {
    if (contained_[b - b0] != 0) {
      total += summaries_[b].count;  // fully contained: the summary already knows
      continue;
    }
    const std::vector<entry>& es = decode(b, nullptr);
    auto lo = std::lower_bound(es.begin(), es.end(), entry{r.lo, 0}, entry_less<entry>);
    auto hi = std::upper_bound(lo, es.end(), r.hi,
                               [](const K& k, const entry& e) { return k < e.key; });
    total += static_cast<std::uint64_t>(hi - lo);
  }
  return total;
}

template <class K>
void compressed_run_store<K>::decode_all(std::vector<entry>* out) const {
  out->reserve(out->size() + size_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const std::vector<entry>& es = decode(b, nullptr);
    out->insert(out->end(), es.begin(), es.end());
  }
}

template <class K>
std::size_t compressed_run_store<K>::encoded_bytes() const {
  std::size_t total = 0;
  for (const block& b : blocks_) total += b.bytes.size();
  return total;
}

template <class K>
std::size_t compressed_run_store<K>::memory_footprint() const {
  std::size_t total = sizeof(*this);
  total += blocks_.capacity() * sizeof(block);
  for (const block& b : blocks_) total += b.bytes.capacity();
  total += summaries_.capacity() * sizeof(summary);
  total += env_lo_.capacity() * sizeof(K);
  total += env_hi_.capacity() * sizeof(K);
  total += cache_.capacity() * sizeof(entry);
  total += contained_.capacity();
  return total;
}

template <class K>
void compressed_run_store<K>::check_invariants() const {
  if (blocks_.size() != summaries_.size()) {
    throw std::logic_error("compressed_run_store: blocks/summaries size mismatch");
  }
  if (env_lo_.size() != summaries_.size() || env_hi_.size() != summaries_.size()) {
    throw std::logic_error("compressed_run_store: envelope columns out of sync");
  }
  std::size_t total = 0;
  bool have_prev = false;
  entry prev{};
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    const summary& s = summaries_[b];
    if (s.count == 0) throw std::logic_error("compressed_run_store: empty block");
    if (env_lo_[b] != s.lo || env_hi_[b] != s.hi) {
      throw std::logic_error("compressed_run_store: envelope column/summary mismatch");
    }
    if (have_prev && !(prev.key < s.lo)) {
      throw std::logic_error("compressed_run_store: envelopes not disjoint/ordered");
    }
    const std::vector<entry>& es = decode(b, nullptr);
    if (es.size() != s.count) throw std::logic_error("compressed_run_store: count mismatch");
    if (es.front().key != s.lo || es.back().key != s.hi || es.front().id != s.first_id) {
      throw std::logic_error("compressed_run_store: summary/payload mismatch");
    }
    for (const entry& e : es) {
      if (have_prev && entry_less(e, prev)) {
        throw std::logic_error("compressed_run_store: entries out of order");
      }
      prev = e;
      have_prev = true;
    }
    total += es.size();
  }
  if (total != size_) throw std::logic_error("compressed_run_store: size mismatch");
}

template class compressed_run_store<std::uint64_t>;
template class compressed_run_store<u128>;
template class compressed_run_store<u512>;

}  // namespace subcover
