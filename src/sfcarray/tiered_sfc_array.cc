#include "sfcarray/tiered_sfc_array.h"

#include <algorithm>
#include <utility>

namespace subcover {

template <class K>
basic_tiered_sfc_array<K>::basic_tiered_sfc_array(tiered_array_options opts)
    : opts_(opts),
      hot_(make_basic_sfc_array<K>(opts.hot_backend)),
      cold_(opts.block_entries == 0 ? 1 : opts.block_entries) {
  if (opts_.hot_capacity == 0) opts_.hot_capacity = 1;
  pending_promotions_.reserve(opts_.max_pending_promotions);
  hot_->set_compaction_policy(opts_.min_live_fraction);
  cold_.set_min_live_fraction(opts_.min_live_fraction);
}

template <class K>
void basic_tiered_sfc_array<K>::note_promotion(const entry& e) const {
  if (pending_promotions_.size() < opts_.max_pending_promotions) {
    pending_promotions_.push_back(e);
  }
}

template <class K>
void basic_tiered_sfc_array<K>::insert(const K& key, std::uint64_t id) {
  hot_->insert(key, id);
  if (hot_->size() > opts_.hot_capacity) maintain();
}

template <class K>
bool basic_tiered_sfc_array<K>::erase(const K& key, std::uint64_t id) {
  if (hot_->erase(key, id)) return true;
  return cold_.erase(key, id);
}

template <class K>
std::size_t basic_tiered_sfc_array<K>::erase_batch(const std::vector<entry>& entries) {
  // Hot entries go through the hot backend's own batch path; the misses
  // fall through to the cold store in (key, id) order, so consecutive
  // erases landing in the same block reuse the decode cache instead of
  // re-decoding per element.
  std::vector<entry> sorted(entries);
  std::sort(sorted.begin(), sorted.end(), [](const entry& a, const entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  });
  std::size_t erased = 0;
  std::vector<entry> cold_misses;
  for (const entry& e : sorted) {
    if (hot_->erase(e.key, e.id)) {
      ++erased;
    } else {
      cold_misses.push_back(e);
    }
  }
  for (const entry& e : cold_misses) {
    if (cold_.erase(e.key, e.id)) ++erased;
  }
  return erased;
}

template <class K>
void basic_tiered_sfc_array<K>::reserve(std::size_t n) {
  hot_->reserve(std::min(n, opts_.hot_capacity));
}

template <class K>
void basic_tiered_sfc_array<K>::bulk_load(std::vector<entry> entries) {
  // Bulk population goes straight to the cold tier: this is the broker
  // bootstrap / benchmark-build path, nothing in the batch is hot yet, and
  // encoding one sorted batch is the cheapest way in.
  counters_.demotions += entries.size();
  cold_.merge_in(std::move(entries));
}

template <class K>
std::optional<typename basic_tiered_sfc_array<K>::entry> basic_tiered_sfc_array<K>::merge_answers(
    std::optional<entry> hot, std::optional<entry> cold) const {
  if (!cold) return hot;
  if (!hot || cold->key < hot->key || (cold->key == hot->key && cold->id < hot->id)) {
    ++counters_.cold_hits;
    note_promotion(*cold);
    return cold;
  }
  return hot;
}

template <class K>
std::optional<typename basic_tiered_sfc_array<K>::entry> basic_tiered_sfc_array<K>::first_in(
    const range_type& r) const {
  return first_in(r, nullptr);
}

template <class K>
std::optional<typename basic_tiered_sfc_array<K>::entry> basic_tiered_sfc_array<K>::first_in(
    const range_type& r, probe_hint* hint) const {
  std::optional<entry> hot = hint != nullptr ? hot_->first_in(r, hint) : hot_->first_in(r);
  if (cold_.empty()) return hot;
  ++counters_.cold_probes;
  std::optional<entry> cold = cold_.first_in(r, nullptr, &counters_);
  return merge_answers(hot, cold);
}

template <class K>
void basic_tiered_sfc_array<K>::probe_frontier(std::span<const range_type> frontier,
                                               frontier_sink& sink) const {
  if (cold_.empty()) {
    // Nothing demoted yet: the sweep is exactly the hot backend's sweep.
    hot_->probe_frontier(frontier, sink);
    return;
  }
  // Wrap the caller's sink: for each hot answer, consult the cold tier with
  // a monotone block cursor (frontier lows are ascending, the cold sweep
  // resumes like the hot one does) and forward the merged answer.
  struct merge_sink final : frontier_sink {
    const basic_tiered_sfc_array* self = nullptr;
    std::span<const range_type> frontier;
    frontier_sink* out = nullptr;
    std::size_t cold_cursor = compressed_run_store<K>::npos;

    bool on_probe(std::size_t index, const entry* hit) override {
      ++self->counters_.cold_probes;
      std::optional<entry> cold =
          self->cold_.first_in(frontier[index], &cold_cursor, &self->counters_);
      std::optional<entry> merged =
          self->merge_answers(hit != nullptr ? std::optional<entry>(*hit) : std::nullopt,
                              cold);
      return out->on_probe(index, merged.has_value() ? &*merged : nullptr);
    }
  };
  merge_sink ms;
  ms.self = this;
  ms.frontier = frontier;
  ms.out = &sink;
  hot_->probe_frontier(frontier, ms);
}

template <class K>
std::uint64_t basic_tiered_sfc_array<K>::count_in(const range_type& r) const {
  return hot_->count_in(r) + cold_.count_in(r);
}

template <class K>
std::size_t basic_tiered_sfc_array<K>::size() const {
  return hot_->size() + cold_.size();
}

template <class K>
void basic_tiered_sfc_array<K>::for_each(const std::function<void(const entry&)>& fn) const {
  // Merge the two sorted tiers. This materializes both (allocates) — it is
  // the flush/diagnostic path, not a probe path.
  std::vector<entry> hot;
  hot.reserve(hot_->size());
  hot_->for_each([&hot](const entry& e) { hot.push_back(e); });
  std::vector<entry> cold;
  cold_.decode_all(&cold);
  std::size_t i = 0;
  std::size_t j = 0;
  auto less = [](const entry& a, const entry& b) {
    if (a.key != b.key) return a.key < b.key;
    return a.id < b.id;
  };
  while (i < hot.size() && j < cold.size()) {
    if (less(cold[j], hot[i])) {
      fn(cold[j++]);
    } else {
      fn(hot[i++]);
    }
  }
  while (i < hot.size()) fn(hot[i++]);
  while (j < cold.size()) fn(cold[j++]);
}

template <class K>
std::size_t basic_tiered_sfc_array<K>::memory_footprint() const {
  return sizeof(*this) + hot_->memory_footprint() + cold_.memory_footprint() +
         pending_promotions_.capacity() * sizeof(entry);
}

template <class K>
void basic_tiered_sfc_array<K>::maintain() {
  if (hot_->size() > opts_.hot_capacity) {
    // Flush the whole hot tier; promotions are applied after, so the
    // recently-hit entries end up resident again. for_each skips the hot
    // backend's tombstones, so the flush purges them for free — fold the
    // retiring backend's ledger (plus that implicit purge) into the
    // accumulator before dropping it.
    std::vector<entry> all;
    all.reserve(hot_->size());
    hot_->for_each([&all](const entry& e) { all.push_back(e); });
    const maintenance_counters hm = hot_->maintenance();
    maint_accum_ += hm;
    maint_accum_.tombstones_purged += hm.tombstones_added - hm.tombstones_purged;
    ++maint_accum_.compactions;
    counters_.demotions += all.size();
    cold_.merge_in(std::move(all));
    hot_ = make_basic_sfc_array<K>(opts_.hot_backend);
    hot_->set_compaction_policy(opts_.min_live_fraction);
  }
  if (!pending_promotions_.empty()) {
    auto less = [](const entry& a, const entry& b) {
      if (a.key != b.key) return a.key < b.key;
      return a.id < b.id;
    };
    std::sort(pending_promotions_.begin(), pending_promotions_.end(), less);
    pending_promotions_.erase(
        std::unique(pending_promotions_.begin(), pending_promotions_.end()),
        pending_promotions_.end());
    for (const entry& e : pending_promotions_) {
      // The mark may be stale (entry erased, or already promoted by an
      // earlier duplicate); only a successful cold erase promotes.
      if (cold_.erase(e.key, e.id)) {
        hot_->insert(e.key, e.id);
        ++counters_.promotions;
      }
    }
    pending_promotions_.clear();
  }
  // Let the hot backend apply its own compaction policy (the cold store
  // compacts per block inline, at erase time).
  hot_->maintain();
}

template <class K>
maintenance_counters basic_tiered_sfc_array<K>::maintenance() const {
  maintenance_counters total = maint_accum_;
  total += hot_->maintenance();
  total += cold_.maint();
  return total;
}

template <class K>
void basic_tiered_sfc_array<K>::set_compaction_policy(double min_live_fraction) {
  opts_.min_live_fraction = std::clamp(min_live_fraction, 0.0, 1.0);
  hot_->set_compaction_policy(opts_.min_live_fraction);
  cold_.set_min_live_fraction(opts_.min_live_fraction);
}

template class basic_tiered_sfc_array<std::uint64_t>;
template class basic_tiered_sfc_array<u128>;
template class basic_tiered_sfc_array<u512>;

}  // namespace subcover
