#include "sfcarray/sfc_array.h"

#include <stdexcept>

#include "sfcarray/skiplist_array.h"
#include "sfcarray/sorted_vector_array.h"

namespace subcover {

template class basic_sfc_array<std::uint64_t>;
template class basic_sfc_array<u128>;
template class basic_sfc_array<u512>;

template <class K>
std::unique_ptr<basic_sfc_array<K>> make_basic_sfc_array(sfc_array_kind kind) {
  switch (kind) {
    case sfc_array_kind::skiplist:
      return std::make_unique<basic_skiplist_array<K>>();
    case sfc_array_kind::sorted_vector:
      return std::make_unique<basic_sorted_vector_array<K>>();
  }
  throw std::invalid_argument("make_sfc_array: unknown kind");
}

template std::unique_ptr<basic_sfc_array<std::uint64_t>> make_basic_sfc_array(sfc_array_kind);
template std::unique_ptr<basic_sfc_array<u128>> make_basic_sfc_array(sfc_array_kind);
template std::unique_ptr<basic_sfc_array<u512>> make_basic_sfc_array(sfc_array_kind);

std::unique_ptr<sfc_array> make_sfc_array(sfc_array_kind kind) {
  return make_basic_sfc_array<u512>(kind);
}

}  // namespace subcover
