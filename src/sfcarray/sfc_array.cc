#include "sfcarray/sfc_array.h"

#include <stdexcept>

#include "sfcarray/skiplist_array.h"
#include "sfcarray/sorted_vector_array.h"

namespace subcover {

std::unique_ptr<sfc_array> make_sfc_array(sfc_array_kind kind) {
  switch (kind) {
    case sfc_array_kind::skiplist:
      return std::make_unique<skiplist_array>();
    case sfc_array_kind::sorted_vector:
      return std::make_unique<sorted_vector_array>();
  }
  throw std::invalid_argument("make_sfc_array: unknown kind");
}

}  // namespace subcover
