#include "sfcarray/sfc_array.h"

#include <stdexcept>

#include "sfcarray/skiplist_array.h"
#include "sfcarray/sorted_vector_array.h"

namespace subcover {

void sfc_array::reserve(std::size_t) {}

void sfc_array::bulk_load(std::vector<entry> entries) {
  reserve(size() + entries.size());
  for (const auto& e : entries) insert(e.key, e.id);
}

std::optional<sfc_array::entry> sfc_array::first_in(const key_range& r, probe_hint*) const {
  return first_in(r);
}

std::unique_ptr<sfc_array> make_sfc_array(sfc_array_kind kind) {
  switch (kind) {
    case sfc_array_kind::skiplist:
      return std::make_unique<skiplist_array>();
    case sfc_array_kind::sorted_vector:
      return std::make_unique<sorted_vector_array>();
  }
  throw std::invalid_argument("make_sfc_array: unknown kind");
}

}  // namespace subcover
