#include "sfcarray/sorted_vector_array.h"

#include <algorithm>

namespace subcover {

namespace {
bool entry_less(const sfc_array::entry& a, const sfc_array::entry& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.id < b.id;
}
}  // namespace

void sorted_vector_array::insert(const u512& key, std::uint64_t id) {
  const entry e{key, id};
  entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), e, entry_less), e);
}

bool sorted_vector_array::erase(const u512& key, std::uint64_t id) {
  const entry e{key, id};
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), e, entry_less);
  if (it == entries_.end() || it->key != key || it->id != id) return false;
  entries_.erase(it);
  return true;
}

std::optional<sfc_array::entry> sorted_vector_array::first_in(const key_range& r) const {
  const entry probe{r.lo, 0};
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), probe, entry_less);
  if (it == entries_.end() || it->key > r.hi) return std::nullopt;
  return *it;
}

std::uint64_t sorted_vector_array::count_in(const key_range& r) const {
  const entry lo_probe{r.lo, 0};
  const auto lo = std::lower_bound(entries_.begin(), entries_.end(), lo_probe, entry_less);
  auto it = lo;
  std::uint64_t count = 0;
  while (it != entries_.end() && it->key <= r.hi) {
    ++count;
    ++it;
  }
  return count;
}

std::size_t sorted_vector_array::size() const { return entries_.size(); }

void sorted_vector_array::for_each(const std::function<void(const entry&)>& fn) const {
  for (const auto& e : entries_) fn(e);
}

}  // namespace subcover
