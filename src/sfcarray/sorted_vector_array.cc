#include "sfcarray/sorted_vector_array.h"

#include <algorithm>
#include <cstddef>
#include <type_traits>

#include "util/simd_kernels.h"

namespace subcover {

namespace {
template <class Entry>
bool entry_less(const Entry& a, const Entry& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.id < b.id;
}
template <class Entry>
struct entry_cmp {
  bool operator()(const Entry& a, const Entry& b) const { return entry_less(a, b); }
};

// Key-only lower bound over the entry window [first, last), in pair indices.
// Every probe the query path issues carries id 0, so entry_less(e, probe)
// reduces to e.key < key and the bound is a pure key-column partition point.
// For u64 keys the 16-byte entries are exactly interleaved {key, id} u64
// words, the layout the vectorized pairwise kernel walks (the kernels
// follow the process-wide CPU dispatch of util/cpu_features.h —
// SUBCOVER_FORCE_SCALAR pins them to the scalar backend); wide keys keep
// std::lower_bound.
template <class K, class Entry>
std::size_t key_lower_bound(const std::vector<Entry>& entries, std::size_t first,
                            std::size_t last, const K& key) {
  if constexpr (std::is_same_v<K, std::uint64_t>) {
    static_assert(sizeof(Entry) == 2 * sizeof(std::uint64_t) &&
                      offsetof(Entry, key) == 0 && offsetof(Entry, id) == sizeof(std::uint64_t),
                  "kernel layout contract: entries are {key, id} u64 pairs");
    return simd::lower_bound_kv_u64(reinterpret_cast<const std::uint64_t*>(entries.data()),
                                    first, last, key);
  } else {
    const Entry probe{key, 0};
    const auto begin = entries.begin();
    return static_cast<std::size_t>(
        std::lower_bound(begin + static_cast<std::ptrdiff_t>(first),
                         begin + static_cast<std::ptrdiff_t>(last), probe,
                         entry_cmp<Entry>{}) -
        begin);
  }
}
}  // namespace

template <class K>
std::size_t basic_sorted_vector_array<K>::skip_dead(std::size_t i) const {
  if (dead_.empty()) return i;
  while (i < entries_.size() && dead_[i] != 0) ++i;
  return i;
}

template <class K>
void basic_sorted_vector_array<K>::insert(const K& key, std::uint64_t id) {
  const entry e{key, id};
  const auto ub = std::upper_bound(entries_.begin(), entries_.end(), e, entry_cmp<entry>{});
  if (!dead_.empty()) {
    // A dead exact duplicate can be resurrected in place: multiset-equal to
    // inserting a fresh copy, and O(log n) instead of an O(n) splice — the
    // erase-then-reinsert churn pattern never moves a byte.
    for (auto it = ub; it != entries_.begin() && *(it - 1) == e;) {
      --it;
      const std::size_t i = static_cast<std::size_t>(it - entries_.begin());
      if (dead_[i] != 0) {
        dead_[i] = 0;
        --tombstones_;
        return;
      }
    }
  }
  const std::size_t pos = static_cast<std::size_t>(ub - entries_.begin());
  entries_.insert(ub, e);
  if (!dead_.empty()) dead_.insert(dead_.begin() + static_cast<std::ptrdiff_t>(pos), 0);
}

template <class K>
bool basic_sorted_vector_array<K>::mark_dead(const K& key, std::uint64_t id) {
  const entry e{key, id};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), e, entry_cmp<entry>{});
  // Exact duplicates may be partially dead already; kill the first live one.
  while (it != entries_.end() && *it == e &&
         is_dead(static_cast<std::size_t>(it - entries_.begin()))) {
    ++it;
  }
  if (it == entries_.end() || it->key != key || it->id != id) return false;
  if (dead_.empty()) dead_.assign(entries_.size(), 0);
  dead_[static_cast<std::size_t>(it - entries_.begin())] = 1;
  ++tombstones_;
  ++maint_.tombstones_added;
  return true;
}

template <class K>
bool basic_sorted_vector_array<K>::erase(const K& key, std::uint64_t id) {
  if (!mark_dead(key, id)) return false;
  maybe_compact();
  return true;
}

template <class K>
std::size_t basic_sorted_vector_array<K>::erase_batch(const std::vector<entry>& entries) {
  // One compaction decision for the whole batch: bulk withdrawals mark all
  // their tombstones first, then pay at most one O(n) pass.
  std::size_t erased = 0;
  for (const entry& e : entries) {
    if (mark_dead(e.key, e.id)) ++erased;
  }
  maybe_compact();
  return erased;
}

template <class K>
void basic_sorted_vector_array<K>::maybe_compact() {
  if (tombstones_ == 0) return;
  const std::size_t live = entries_.size() - tombstones_;
  if (static_cast<double>(live) < min_live_fraction_ * static_cast<double>(entries_.size())) {
    compact();
  }
}

template <class K>
void basic_sorted_vector_array<K>::compact() {
  if (tombstones_ == 0) return;
  std::size_t w = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (dead_[i] == 0) entries_[w++] = entries_[i];
  }
  entries_.resize(w);
  maint_.tombstones_purged += tombstones_;
  ++maint_.compactions;
  tombstones_ = 0;
  // Release the bitmap allocation, not just the elements: compaction is the
  // reclamation point, and the footprint must never exceed the tombstone-free
  // high-water mark after it (pinned by the memory_footprint audits). The
  // next erase re-allocates lazily.
  dead_ = std::vector<std::uint8_t>{};
}

template <class K>
void basic_sorted_vector_array<K>::maintain() {
  maybe_compact();
}

template <class K>
void basic_sorted_vector_array<K>::set_compaction_policy(double min_live_fraction) {
  min_live_fraction_ = std::clamp(min_live_fraction, 0.0, 1.0);
}

template <class K>
void basic_sorted_vector_array<K>::reserve(std::size_t n) {
  entries_.reserve(n);
}

template <class K>
void basic_sorted_vector_array<K>::bulk_load(std::vector<entry> entries) {
  // The merge below cannot carry the parallel bitmap through
  // std::inplace_merge; purge tombstones first so the bitmap is empty.
  compact();
  std::sort(entries.begin(), entries.end(), entry_cmp<entry>{});
  if (entries_.empty()) {
    entries_ = std::move(entries);
    return;
  }
  const std::size_t old_size = entries_.size();
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  std::inplace_merge(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(old_size), entries_.end(),
                     entry_cmp<entry>{});
}

template <class K>
auto basic_sorted_vector_array<K>::first_in(const range_type& r) const -> std::optional<entry> {
  const std::size_t it = skip_dead(key_lower_bound(entries_, 0, entries_.size(), r.lo));
  if (it == entries_.size() || entries_[it].key > r.hi) return std::nullopt;
  return entries_[it];
}

template <class K>
auto basic_sorted_vector_array<K>::first_in(const range_type& r, probe_hint* hint) const
    -> std::optional<entry> {
  if (hint == nullptr) return first_in(r);
  const entry probe{r.lo, 0};
  // Gallop from the cursor: double the step until a window bracketing the
  // lower bound of r.lo is found, then binary-search inside it. Nearby
  // probes cost O(log distance); a stale or far cursor degrades gracefully
  // to O(log n).
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  std::size_t pos = hint->pos < entries_.size() ? hint->pos : entries_.size();
  if (pos < entries_.size() && entry_less(entries_[pos], probe)) {
    // Cursor is left of the answer: gallop right.
    std::size_t step = 1;
    lo = pos + 1;
    while (lo + step < entries_.size() && entry_less(entries_[lo + step - 1], probe)) {
      lo += step;
      step <<= 1;
    }
    hi = std::min(lo + step, entries_.size());
  } else {
    // Cursor is at or right of the answer: gallop left.
    std::size_t step = 1;
    hi = pos;
    while (step <= hi && !entry_less(entries_[hi - step], probe)) {
      hi -= step;
      step <<= 1;
    }
    lo = step <= hi ? hi - step : 0;
  }
  const std::size_t it = skip_dead(key_lower_bound(entries_, lo, hi, r.lo));
  hint->pos = it;
  if (it == entries_.size() || entries_[it].key > r.hi) return std::nullopt;
  return entries_[it];
}

template <class K>
void basic_sorted_vector_array<K>::probe_frontier(std::span<const range_type> frontier,
                                                  frontier_sink& sink) const {
  // One merged galloping sweep. `pos` is the first *live* entry at or after
  // the previous range's lo; every entry left of it is below every earlier
  // lo or dead, and frontier lows are non-decreasing, so the next lower
  // bound can only be at or right of `pos` — each search resumes instead of
  // restarting, and a run of tombstones is skipped once per sweep, not once
  // per range.
  std::size_t pos = 0;
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const range_type& r = frontier[i];
    const entry probe{r.lo, 0};
    std::size_t it;
    if (i == 0) {
      // First probe: a plain binary search — exactly first_in's cost (a
      // gallop from index 0 would double the comparisons).
      it = key_lower_bound(entries_, 0, entries_.size(), r.lo);
    } else if (pos >= entries_.size() || !entry_less(entries_[pos], probe)) {
      // The resumed cursor is already at (or past) the bound.
      it = pos;
    } else {
      // Gallop right from the cursor: double the step until a window
      // bracketing the lower bound is found, then binary-search inside it.
      // A probe `dist` entries ahead costs O(log dist) instead of O(log n).
      std::size_t lo = pos + 1;
      std::size_t step = 1;
      while (lo + step < entries_.size() && entry_less(entries_[lo + step - 1], probe)) {
        lo += step;
        step <<= 1;
      }
      const std::size_t hi = std::min(lo + step, entries_.size());
      it = key_lower_bound(entries_, lo, hi, r.lo);
    }
    it = skip_dead(it);
    pos = it;
    const entry* hit =
        (it < entries_.size() && entries_[it].key <= r.hi) ? &entries_[it] : nullptr;
    if (!sink.on_probe(i, hit)) return;
  }
}

template <class K>
std::uint64_t basic_sorted_vector_array<K>::count_in(const range_type& r) const {
  std::size_t it = key_lower_bound(entries_, 0, entries_.size(), r.lo);
  std::uint64_t count = 0;
  while (it < entries_.size() && entries_[it].key <= r.hi) {
    if (!is_dead(it)) ++count;
    ++it;
  }
  return count;
}

template <class K>
std::size_t basic_sorted_vector_array<K>::size() const {
  return entries_.size() - tombstones_;
}

template <class K>
void basic_sorted_vector_array<K>::for_each(const std::function<void(const entry&)>& fn) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (!is_dead(i)) fn(entries_[i]);
  }
}

template <class K>
std::size_t basic_sorted_vector_array<K>::memory_footprint() const {
  // Capacity, not size: reserve slack (and the tombstone bitmap) is owned
  // memory too.
  return sizeof(*this) + entries_.capacity() * sizeof(entry) + dead_.capacity();
}

template class basic_sorted_vector_array<std::uint64_t>;
template class basic_sorted_vector_array<u128>;
template class basic_sorted_vector_array<u512>;

}  // namespace subcover
