#include "sfcarray/sorted_vector_array.h"

#include <algorithm>

namespace subcover {

namespace {
bool entry_less(const sfc_array::entry& a, const sfc_array::entry& b) {
  if (a.key != b.key) return a.key < b.key;
  return a.id < b.id;
}
}  // namespace

void sorted_vector_array::insert(const u512& key, std::uint64_t id) {
  const entry e{key, id};
  entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), e, entry_less), e);
}

bool sorted_vector_array::erase(const u512& key, std::uint64_t id) {
  const entry e{key, id};
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), e, entry_less);
  if (it == entries_.end() || it->key != key || it->id != id) return false;
  entries_.erase(it);
  return true;
}

void sorted_vector_array::reserve(std::size_t n) { entries_.reserve(n); }

void sorted_vector_array::bulk_load(std::vector<entry> entries) {
  std::sort(entries.begin(), entries.end(), entry_less);
  if (entries_.empty()) {
    entries_ = std::move(entries);
    return;
  }
  const std::size_t old_size = entries_.size();
  entries_.insert(entries_.end(), entries.begin(), entries.end());
  std::inplace_merge(entries_.begin(),
                     entries_.begin() + static_cast<std::ptrdiff_t>(old_size), entries_.end(),
                     entry_less);
}

std::optional<sfc_array::entry> sorted_vector_array::first_in(const key_range& r) const {
  const entry probe{r.lo, 0};
  const auto it = std::lower_bound(entries_.begin(), entries_.end(), probe, entry_less);
  if (it == entries_.end() || it->key > r.hi) return std::nullopt;
  return *it;
}

std::optional<sfc_array::entry> sorted_vector_array::first_in(const key_range& r,
                                                              probe_hint* hint) const {
  if (hint == nullptr) return first_in(r);
  const entry probe{r.lo, 0};
  // Gallop from the cursor: double the step until a window bracketing the
  // lower bound of r.lo is found, then binary-search inside it. Nearby
  // probes cost O(log distance); a stale or far cursor degrades gracefully
  // to O(log n).
  std::size_t lo = 0;
  std::size_t hi = entries_.size();
  std::size_t pos = hint->pos < entries_.size() ? hint->pos : entries_.size();
  if (pos < entries_.size() && entry_less(entries_[pos], probe)) {
    // Cursor is left of the answer: gallop right.
    std::size_t step = 1;
    lo = pos + 1;
    while (lo + step < entries_.size() && entry_less(entries_[lo + step - 1], probe)) {
      lo += step;
      step <<= 1;
    }
    hi = std::min(lo + step, entries_.size());
  } else {
    // Cursor is at or right of the answer: gallop left.
    std::size_t step = 1;
    hi = pos;
    while (step <= hi && !entry_less(entries_[hi - step], probe)) {
      hi -= step;
      step <<= 1;
    }
    lo = step <= hi ? hi - step : 0;
  }
  const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(lo);
  const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(hi);
  const auto it = std::lower_bound(first, last, probe, entry_less);
  hint->pos = static_cast<std::size_t>(it - entries_.begin());
  if (it == entries_.end() || it->key > r.hi) return std::nullopt;
  return *it;
}

std::uint64_t sorted_vector_array::count_in(const key_range& r) const {
  const entry lo_probe{r.lo, 0};
  const auto lo = std::lower_bound(entries_.begin(), entries_.end(), lo_probe, entry_less);
  auto it = lo;
  std::uint64_t count = 0;
  while (it != entries_.end() && it->key <= r.hi) {
    ++count;
    ++it;
  }
  return count;
}

std::size_t sorted_vector_array::size() const { return entries_.size(); }

void sorted_vector_array::for_each(const std::function<void(const entry&)>& fn) const {
  for (const auto& e : entries_) fn(e);
}

}  // namespace subcover
