// Tiered SFC array: a probe-ready hot tier over a compressed cold tier.
//
// basic_tiered_sfc_array<K> implements the basic_sfc_array<K> interface by
// splitting the entries between two tiers:
//
//   hot  — a regular backend (skip list or sorted vector, the configured
//          sfc_array_kind) holding the recently inserted and recently hit
//          working set, probe-ready and allocation-free on the warm path;
//   cold — a compressed_run_store holding everything else, delta/varint
//          encoded with per-block envelope summaries.
//
// Every probe is answered from both tiers and merged by (key, id), so the
// answers are byte-identical to a single resident array holding the union —
// the equivalence the CompressedTierIsByteIdenticalToResident test pins.
// When the cold tier is empty (the default dominance/covering configuration
// never populates it), probes forward straight to the hot backend with no
// merge wrapper at all, keeping today's warm path untouched.
//
// Tiering policy (generational, deterministic):
//   * insert() lands in the hot tier; bulk_load() lands in the cold tier
//     (bulk population is the broker-bootstrap path where compression pays
//     immediately and nothing is hot yet).
//   * A cold answer that wins a probe marks its entry for promotion. The
//     marks accumulate in a bounded pending list — probes never mutate the
//     tiers mid-sweep (frontier cursors stay valid).
//   * maintain() — called by query_plan at the end of each query, and
//     internally when insert() overflows the hot tier — first flushes the
//     whole hot tier to cold when it exceeds hot_capacity, then applies the
//     pending promotions (cold erase -> hot insert). Flushing before
//     promoting leaves exactly the recently-hit set resident.
//
// Counters: the array keeps a cumulative tier_counters ledger (mutable —
// probes are logically const); query_plan snapshots it around a query and
// reports the delta in query_stats. Like query_plan itself, a tiered array
// is single-threaded by contract (the broker gives each link shard its own).
#pragma once

#include <memory>

#include "sfcarray/compressed_run_store.h"
#include "sfcarray/sfc_array.h"

namespace subcover {

struct tiered_array_options {
  // Backend kind for the hot tier.
  sfc_array_kind hot_backend = sfc_array_kind::skiplist;
  // maintain() flushes the hot tier to cold when it grows past this.
  std::size_t hot_capacity = 4096;
  // Cold-tier block size (entries per compressed block).
  std::size_t block_entries = 64;
  // Bound on promotion marks buffered between maintain() calls.
  std::size_t max_pending_promotions = 256;
  // Compaction threshold applied to both tiers (see
  // basic_sfc_array::set_compaction_policy): a region is compacted once its
  // live fraction drops below this. 1.0 = eager per-erase compaction (the
  // naive-churn baseline), 0.0 = never.
  double min_live_fraction = 0.5;
};

template <class K>
class basic_tiered_sfc_array final : public basic_sfc_array<K> {
 public:
  using base = basic_sfc_array<K>;
  using entry = typename base::entry;
  using range_type = typename base::range_type;
  using probe_hint = typename base::probe_hint;
  using frontier_sink = typename base::frontier_sink;

  explicit basic_tiered_sfc_array(tiered_array_options opts = {});

  void insert(const K& key, std::uint64_t id) override;
  bool erase(const K& key, std::uint64_t id) override;
  std::size_t erase_batch(const std::vector<entry>& entries) override;
  void reserve(std::size_t n) override;
  void bulk_load(std::vector<entry> entries) override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r) const override;
  [[nodiscard]] std::optional<entry> first_in(const range_type& r,
                                              probe_hint* hint) const override;
  void probe_frontier(std::span<const range_type> frontier, frontier_sink& sink) const override;
  [[nodiscard]] std::uint64_t count_in(const range_type& r) const override;
  [[nodiscard]] std::size_t size() const override;
  void for_each(const std::function<void(const entry&)>& fn) const override;
  [[nodiscard]] std::size_t memory_footprint() const override;

  // Applies the tiering policy: flush an over-capacity hot tier to cold,
  // then promote the entries marked by cold probe hits since the last call,
  // then let the hot backend compact its tombstones.
  void maintain() override;
  // Sum of the hot backend's ledger (across flush-rebuilds), the cold
  // store's, and the flush events themselves.
  [[nodiscard]] maintenance_counters maintenance() const override;
  void set_compaction_policy(double min_live_fraction) override;

  [[nodiscard]] const tier_counters& counters() const { return counters_; }
  [[nodiscard]] std::size_t hot_size() const { return hot_->size(); }
  [[nodiscard]] std::size_t cold_size() const { return cold_.size(); }
  [[nodiscard]] const compressed_run_store<K>& cold_store() const { return cold_; }

 private:
  // Merges per-tier answers (smallest (key, id) wins), counting cold wins
  // and marking them for promotion.
  [[nodiscard]] std::optional<entry> merge_answers(std::optional<entry> hot,
                                                   std::optional<entry> cold) const;
  void note_promotion(const entry& e) const;

  tiered_array_options opts_;
  std::unique_ptr<base> hot_;
  compressed_run_store<K> cold_;
  mutable tier_counters counters_;
  mutable std::vector<entry> pending_promotions_;
  // Maintenance work of hot backends already flushed away (maintain()
  // rebuilds hot_ fresh, which would otherwise drop their ledger).
  maintenance_counters maint_accum_;
};

using tiered_sfc_array = basic_tiered_sfc_array<u512>;

extern template class basic_tiered_sfc_array<std::uint64_t>;
extern template class basic_tiered_sfc_array<u128>;
extern template class basic_tiered_sfc_array<u512>;

}  // namespace subcover
