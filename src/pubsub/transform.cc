#include "pubsub/transform.h"

#include <stdexcept>

namespace subcover {

// The dominance universe is uniform-width (k = max attribute bits), but
// attributes may be narrower. Narrow attribute values are scaled onto the
// universe grid (paper Section 2: the per-dimension maximum "may be
// different for different dimensions"):
//   lower bounds map to the START of their scaled cell,
//   upper bounds map to the END of their scaled cell,
// which preserves the covering <=> dominance equivalence exactly and keeps
// wildcard bounds on the universe boundary (cheap single-bit side lengths).

point to_dominance_point(const schema& s, const subscription& sub) {
  if (sub.attribute_count() != s.attribute_count())
    throw std::invalid_argument("to_dominance_point: schema mismatch");
  const universe u = s.dominance_universe();
  point p(u.dims());
  for (int i = 0; i < s.attribute_count(); ++i) {
    const auto& r = sub.range(i);
    const int shift = u.bits() - s.attribute(i).bits;
    p[2 * i] = static_cast<std::uint32_t>(u.coord_max() - (r.lo << shift));
    p[2 * i + 1] = static_cast<std::uint32_t>(((r.hi + 1) << shift) - 1);
  }
  return p;
}

subscription from_dominance_point(const schema& s, const point& p) {
  const universe u = s.dominance_universe();
  if (p.dims() != u.dims())
    throw std::invalid_argument("from_dominance_point: dimension mismatch");
  std::vector<attr_range> ranges;
  ranges.reserve(static_cast<std::size_t>(s.attribute_count()));
  for (int i = 0; i < s.attribute_count(); ++i) {
    const int shift = u.bits() - s.attribute(i).bits;
    const std::uint64_t lo =
        (static_cast<std::uint64_t>(u.coord_max()) - p[2 * i]) >> shift;
    const std::uint64_t hi = ((static_cast<std::uint64_t>(p[2 * i + 1]) + 1) >> shift) - 1;
    ranges.push_back({lo, hi});
  }
  return {s, std::move(ranges)};
}

}  // namespace subcover
