#include "pubsub/schema.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace subcover {

bool operator==(const attribute_def& a, const attribute_def& b) {
  return a.name == b.name && a.type == b.type && a.bits == b.bits && a.labels == b.labels;
}

bool operator==(const schema& a, const schema& b) { return a.attrs_ == b.attrs_; }

schema::schema(std::vector<attribute_def> attributes) : attrs_(std::move(attributes)) {
  if (attrs_.empty()) throw std::invalid_argument("schema: needs at least one attribute");
  if (attrs_.size() > static_cast<std::size_t>(kMaxDims / 2))
    throw std::invalid_argument("schema: too many attributes (max " +
                                std::to_string(kMaxDims / 2) + ")");
  std::unordered_set<std::string> names;
  for (const auto& a : attrs_) {
    if (a.name.empty()) throw std::invalid_argument("schema: attribute with empty name");
    if (!names.insert(a.name).second)
      throw std::invalid_argument("schema: duplicate attribute name '" + a.name + "'");
    if (a.bits < 1 || a.bits > kMaxBitsPerDim)
      throw std::invalid_argument("schema: attribute '" + a.name + "' has bad bit width");
    if (a.type == attribute_type::categorical) {
      if (a.labels.empty())
        throw std::invalid_argument("schema: categorical attribute '" + a.name +
                                    "' needs labels");
      if (a.labels.size() > (std::uint64_t{1} << a.bits))
        throw std::invalid_argument("schema: labels of '" + a.name +
                                    "' overflow the bit width");
      std::unordered_set<std::string> labels;
      for (const auto& l : a.labels)
        if (!labels.insert(l).second)
          throw std::invalid_argument("schema: duplicate label '" + l + "' in '" + a.name +
                                      "'");
    }
  }
}

std::optional<int> schema::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < attrs_.size(); ++i)
    if (attrs_[i].name == name) return static_cast<int>(i);
  return std::nullopt;
}

std::uint64_t schema::max_value(int i) const {
  return (std::uint64_t{1} << attribute(i).bits) - 1;
}

std::uint64_t schema::label_value(int attr, std::string_view label) const {
  const auto& a = attribute(attr);
  if (a.type != attribute_type::categorical)
    throw std::invalid_argument("schema: attribute '" + a.name + "' is not categorical");
  const auto it = std::find(a.labels.begin(), a.labels.end(), label);
  if (it == a.labels.end())
    throw std::invalid_argument("schema: unknown label '" + std::string(label) + "' for '" +
                                a.name + "'");
  return static_cast<std::uint64_t>(it - a.labels.begin());
}

std::string schema::format_value(int attr, std::uint64_t value) const {
  const auto& a = attribute(attr);
  if (a.type == attribute_type::categorical && value < a.labels.size())
    return a.labels[static_cast<std::size_t>(value)];
  return std::to_string(value);
}

universe schema::dominance_universe() const {
  int max_bits = 1;
  for (const auto& a : attrs_) max_bits = std::max(max_bits, a.bits);
  return {2 * attribute_count(), max_bits};
}

}  // namespace subcover
