// A content-based subscription: a conjunction of closed range constraints,
// one per attribute (paper Section 1.1). Geometrically a beta-dimensional
// rectangle in attribute space; s1 covers s2 iff the rectangle of s1
// contains the rectangle of s2 (N(s1) superset of N(s2)).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pubsub/schema.h"

namespace subcover {

struct attr_range {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;  // inclusive
  friend bool operator==(const attr_range&, const attr_range&) = default;
};

class subscription {
 public:
  subscription() = default;
  // One range per schema attribute, in schema order. Throws
  // std::invalid_argument on count mismatch, lo > hi, or domain overflow.
  subscription(const schema& s, std::vector<attr_range> ranges);

  // Wildcard subscription matching every message.
  static subscription match_all(const schema& s);

  // Rebuilds a subscription from ranges without schema validation. For
  // deserialization paths (broker WAL replay) where the ranges were already
  // validated when first accepted and the schema is not stored alongside.
  static subscription from_raw_ranges(std::vector<attr_range> ranges);

  [[nodiscard]] int attribute_count() const { return static_cast<int>(ranges_.size()); }
  [[nodiscard]] const attr_range& range(int i) const {
    return ranges_[static_cast<std::size_t>(i)];
  }

  // True iff this subscription covers `other`: every range contains the
  // other's range. This is the exact (ground-truth) covering test.
  [[nodiscard]] bool covers(const subscription& other) const;

  // Rectangle volume (number of matching value combinations).
  [[nodiscard]] long double volume_ld() const;

  [[nodiscard]] std::string to_string(const schema& s) const;

  friend bool operator==(const subscription&, const subscription&) = default;

 private:
  std::vector<attr_range> ranges_;
};

}  // namespace subcover
