#include "pubsub/event.h"

#include <stdexcept>

namespace subcover {

event::event(const schema& s, std::vector<std::uint64_t> values) : values_(std::move(values)) {
  if (static_cast<int>(values_.size()) != s.attribute_count())
    throw std::invalid_argument("event: value count does not match schema");
  for (int i = 0; i < s.attribute_count(); ++i) {
    if (values_[static_cast<std::size_t>(i)] > s.max_value(i))
      throw std::invalid_argument("event: value exceeds domain of attribute '" +
                                  s.attribute(i).name + "'");
  }
}

std::string event::to_string(const schema& s) const {
  std::string out = "[";
  for (int i = 0; i < attribute_count(); ++i) {
    if (i != 0) out += ", ";
    out += s.attribute(i).name + " = " + s.format_value(i, value(i));
  }
  return out + "]";
}

}  // namespace subcover
