// A published message: one raw value per schema attribute
// (the paper's example: [stock = IBM, volume = 1000, current = 88]).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pubsub/schema.h"

namespace subcover {

class event {
 public:
  event() = default;
  // One value per attribute in schema order; throws std::invalid_argument on
  // count mismatch or domain overflow.
  event(const schema& s, std::vector<std::uint64_t> values);

  [[nodiscard]] int attribute_count() const { return static_cast<int>(values_.size()); }
  [[nodiscard]] std::uint64_t value(int i) const { return values_[static_cast<std::size_t>(i)]; }

  [[nodiscard]] std::string to_string(const schema& s) const;

  friend bool operator==(const event&, const event&) = default;

 private:
  std::vector<std::uint64_t> values_;
};

}  // namespace subcover
