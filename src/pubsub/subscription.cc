#include "pubsub/subscription.h"

#include <stdexcept>

namespace subcover {

subscription::subscription(const schema& s, std::vector<attr_range> ranges)
    : ranges_(std::move(ranges)) {
  if (static_cast<int>(ranges_.size()) != s.attribute_count())
    throw std::invalid_argument("subscription: range count does not match schema");
  for (int i = 0; i < s.attribute_count(); ++i) {
    const auto& r = ranges_[static_cast<std::size_t>(i)];
    if (r.lo > r.hi)
      throw std::invalid_argument("subscription: empty range on attribute '" +
                                  s.attribute(i).name + "'");
    if (r.hi > s.max_value(i))
      throw std::invalid_argument("subscription: range exceeds domain of attribute '" +
                                  s.attribute(i).name + "'");
  }
}

subscription subscription::match_all(const schema& s) {
  std::vector<attr_range> ranges;
  ranges.reserve(static_cast<std::size_t>(s.attribute_count()));
  for (int i = 0; i < s.attribute_count(); ++i) ranges.push_back({0, s.max_value(i)});
  return {s, std::move(ranges)};
}

subscription subscription::from_raw_ranges(std::vector<attr_range> ranges) {
  subscription s;
  s.ranges_ = std::move(ranges);
  return s;
}

bool subscription::covers(const subscription& other) const {
  if (ranges_.size() != other.ranges_.size())
    throw std::invalid_argument("subscription::covers: schema mismatch");
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    if (ranges_[i].lo > other.ranges_[i].lo || ranges_[i].hi < other.ranges_[i].hi)
      return false;
  }
  return true;
}

long double subscription::volume_ld() const {
  long double v = 1;
  for (const auto& r : ranges_) v *= static_cast<long double>(r.hi - r.lo + 1);
  return v;
}

std::string subscription::to_string(const schema& s) const {
  std::string out = "[";
  for (int i = 0; i < attribute_count(); ++i) {
    if (i != 0) out += ", ";
    const auto& r = range(i);
    const auto& a = s.attribute(i);
    if (r.lo == r.hi) {
      out += a.name + " = " + s.format_value(i, r.lo);
    } else if (r.lo == 0 && r.hi == s.max_value(i)) {
      out += a.name + " = *";
    } else {
      out += a.name + " in [" + s.format_value(i, r.lo) + ", " + s.format_value(i, r.hi) + "]";
    }
  }
  return out + "]";
}

}  // namespace subcover
