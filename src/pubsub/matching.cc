#include "pubsub/matching.h"

#include <stdexcept>

namespace subcover {

bool matches(const subscription& s, const event& e) {
  if (s.attribute_count() != e.attribute_count())
    throw std::invalid_argument("matches: schema mismatch");
  for (int i = 0; i < s.attribute_count(); ++i) {
    const auto& r = s.range(i);
    const auto v = e.value(i);
    if (v < r.lo || v > r.hi) return false;
  }
  return true;
}

std::vector<std::size_t> match_all(const std::vector<subscription>& subs, const event& e) {
  std::vector<std::size_t> hits;
  for (std::size_t i = 0; i < subs.size(); ++i)
    if (matches(subs[i], e)) hits.push_back(i);
  return hits;
}

}  // namespace subcover
