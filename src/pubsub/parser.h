// Textual subscription / event syntax, modeled on the paper's introduction:
//   subscription: "stock = IBM, volume > 500, current < 95"
//   event:        "stock = IBM, volume = 1000, current = 88"
//
// Grammar (comma-separated constraints):
//   constraint := attr '=' value          (equality; '*' = wildcard)
//               | attr '>=' value | attr '>' value
//               | attr '<=' value | attr '<' value
//               | attr 'in' '[' value ',' value ']'
// Values are unsigned integers, or labels for categorical attributes.
// Multiple constraints on the same attribute intersect. Attributes without
// constraints are unconstrained (full range) in subscriptions; events must
// constrain every attribute with '='.
#pragma once

#include <string_view>

#include "pubsub/event.h"
#include "pubsub/subscription.h"

namespace subcover {

// Throws std::invalid_argument with a position-bearing message on syntax
// errors, unknown attributes/labels, or empty intersections.
subscription parse_subscription(const schema& s, std::string_view text);

// Events require exactly one '=' constraint per attribute.
event parse_event(const schema& s, std::string_view text);

}  // namespace subcover
