// Message schema for the content-based publish-subscribe model (Section 1.1):
// every message carries beta numeric attributes; every subscription is a
// conjunction of closed range constraints, one per attribute.
//
// Attributes are numeric (raw integer domain [0, 2^bits)) or categorical
// (a fixed label dictionary; equality constraints become [v, v] ranges).
// The schema is immutable after construction, so it can be shared freely
// across brokers and indexes.
//
// The dominance universe of a schema has d = 2*beta dimensions and
// k = max attribute bits (Edelsbrunner-Overmars transform, Section 1.1).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/universe.h"

namespace subcover {

enum class attribute_type { numeric, categorical };

struct attribute_def {
  std::string name;
  attribute_type type = attribute_type::numeric;
  int bits = 16;  // domain [0, 2^bits); 1 <= bits <= kMaxBitsPerDim
  // Labels for categorical attributes; label i has value i. Must fit in the
  // bit width. Ignored for numeric attributes.
  std::vector<std::string> labels;
};

class schema {
 public:
  // Throws std::invalid_argument on: empty attribute list, > kMaxDims/2
  // attributes, duplicate names, bad bit widths, categorical label overflow
  // or duplicate labels.
  explicit schema(std::vector<attribute_def> attributes);

  [[nodiscard]] int attribute_count() const { return static_cast<int>(attrs_.size()); }
  [[nodiscard]] const attribute_def& attribute(int i) const {
    return attrs_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] std::optional<int> index_of(std::string_view name) const;

  // Largest raw value of attribute i: 2^bits - 1.
  [[nodiscard]] std::uint64_t max_value(int i) const;
  // Resolves a categorical label to its value. Throws std::invalid_argument
  // for numeric attributes or unknown labels.
  [[nodiscard]] std::uint64_t label_value(int attr, std::string_view label) const;
  // Formats a raw value (label text for categorical attributes).
  [[nodiscard]] std::string format_value(int attr, std::uint64_t value) const;

  // The point-dominance universe: 2*beta dimensions, max attribute width.
  [[nodiscard]] universe dominance_universe() const;

  friend bool operator==(const schema&, const schema&);

 private:
  std::vector<attribute_def> attrs_;
};

bool operator==(const attribute_def& a, const attribute_def& b);

}  // namespace subcover
