// The Edelsbrunner-Overmars transform (paper Section 1.1): a subscription
// over beta attributes maps to a point in d = 2*beta dimensions such that
//
//   s1 covers s2   <=>   p(s1) dominates p(s2) coordinate-wise.
//
// The paper writes p(s) = (-l_1, r_1, ..., -l_beta, r_beta); to keep
// coordinates unsigned we shift the negated lower bounds by (2^k - 1):
//   dim 2i   = (2^k - 1) - lo_i
//   dim 2i+1 = hi_i
// which preserves the order and hence the equivalence.
#pragma once

#include "geometry/point.h"
#include "pubsub/subscription.h"

namespace subcover {

// p(s) in the schema's dominance universe.
point to_dominance_point(const schema& s, const subscription& sub);

// Inverse (for diagnostics): reconstructs the subscription from p(s).
subscription from_dominance_point(const schema& s, const point& p);

}  // namespace subcover
