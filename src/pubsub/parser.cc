#include "pubsub/parser.h"

#include <algorithm>
#include <cctype>
#include <stdexcept>
#include <vector>

namespace subcover {

namespace {

struct token_stream {
  std::string_view text;
  std::size_t pos = 0;

  void skip_space() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  [[nodiscard]] bool done() {
    skip_space();
    return pos >= text.size();
  }
  [[nodiscard]] char peek() {
    skip_space();
    return pos < text.size() ? text[pos] : '\0';
  }
  bool consume(char c) {
    skip_space();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }
  // Identifier or label: [A-Za-z0-9_.*-]+
  std::string word() {
    skip_space();
    const std::size_t start = pos;
    while (pos < text.size()) {
      const char c = text[pos];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '-' ||
          c == '*')
        ++pos;
      else
        break;
    }
    if (pos == start) fail("expected a name or value");
    return std::string(text.substr(start, pos - start));
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("parse error at position " + std::to_string(pos) + ": " + msg +
                                " in \"" + std::string(text) + "\"");
  }
};

std::uint64_t parse_value(const schema& s, int attr, const std::string& w, token_stream& ts) {
  const auto& def = s.attribute(attr);
  if (!w.empty() && std::all_of(w.begin(), w.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c));
      })) {
    try {
      const std::uint64_t v = std::stoull(w);
      if (v > s.max_value(attr)) ts.fail("value " + w + " exceeds domain of " + def.name);
      return v;
    } catch (const std::out_of_range&) {
      ts.fail("value " + w + " out of range");
    }
  }
  if (def.type == attribute_type::categorical) {
    try {
      return s.label_value(attr, w);
    } catch (const std::invalid_argument& e) {
      ts.fail(e.what());
    }
  }
  ts.fail("expected a number for numeric attribute " + def.name);
}

struct constraint {
  int attr;
  attr_range range;
};

// Parses one "attr op value" constraint; returns nullopt for "attr = *".
std::optional<constraint> parse_constraint(const schema& s, token_stream& ts,
                                           bool equality_only) {
  const std::string name = ts.word();
  const auto attr = s.index_of(name);
  if (!attr.has_value()) ts.fail("unknown attribute '" + name + "'");
  const std::uint64_t max = s.max_value(*attr);

  ts.skip_space();
  if (ts.consume('=')) {
    const std::string w = ts.word();
    if (w == "*") return std::nullopt;
    const auto v = parse_value(s, *attr, w, ts);
    return constraint{*attr, {v, v}};
  }
  if (equality_only) ts.fail("events only support '=' constraints");
  if (ts.consume('>')) {
    const bool closed = ts.consume('=');
    const auto v = parse_value(s, *attr, ts.word(), ts);
    if (!closed && v == max) ts.fail("'> max' is an empty range on " + name);
    return constraint{*attr, {closed ? v : v + 1, max}};
  }
  if (ts.consume('<')) {
    const bool closed = ts.consume('=');
    const auto v = parse_value(s, *attr, ts.word(), ts);
    if (!closed && v == 0) ts.fail("'< 0' is an empty range on " + name);
    return constraint{*attr, {0, closed ? v : v - 1}};
  }
  // "in [lo, hi]"
  const std::string kw = ts.word();
  if (kw != "in") ts.fail("expected an operator after '" + name + "'");
  ts.expect('[');
  const auto lo = parse_value(s, *attr, ts.word(), ts);
  ts.expect(',');
  const auto hi = parse_value(s, *attr, ts.word(), ts);
  ts.expect(']');
  if (lo > hi) ts.fail("empty interval on " + name);
  return constraint{*attr, {lo, hi}};
}

std::vector<constraint> parse_constraints(const schema& s, std::string_view text,
                                          bool equality_only) {
  token_stream ts{text};
  std::vector<constraint> out;
  if (ts.done()) return out;
  // Optional surrounding brackets: "[a = 1, b = 2]".
  const bool bracketed = ts.consume('[');
  while (true) {
    const auto c = parse_constraint(s, ts, equality_only);
    if (c.has_value()) out.push_back(*c);
    if (!ts.consume(',')) break;
  }
  if (bracketed) ts.expect(']');
  if (!ts.done()) ts.fail("trailing input");
  return out;
}

}  // namespace

subscription parse_subscription(const schema& s, std::string_view text) {
  std::vector<attr_range> ranges;
  ranges.reserve(static_cast<std::size_t>(s.attribute_count()));
  for (int i = 0; i < s.attribute_count(); ++i) ranges.push_back({0, s.max_value(i)});
  for (const auto& c : parse_constraints(s, text, /*equality_only=*/false)) {
    auto& r = ranges[static_cast<std::size_t>(c.attr)];
    r.lo = std::max(r.lo, c.range.lo);
    r.hi = std::min(r.hi, c.range.hi);
    if (r.lo > r.hi)
      throw std::invalid_argument("parse error: constraints on '" +
                                  s.attribute(c.attr).name + "' have empty intersection");
  }
  return {s, std::move(ranges)};
}

event parse_event(const schema& s, std::string_view text) {
  std::vector<std::optional<std::uint64_t>> values(
      static_cast<std::size_t>(s.attribute_count()));
  for (const auto& c : parse_constraints(s, text, /*equality_only=*/true)) {
    auto& slot = values[static_cast<std::size_t>(c.attr)];
    if (slot.has_value())
      throw std::invalid_argument("parse error: duplicate value for attribute '" +
                                  s.attribute(c.attr).name + "'");
    slot = c.range.lo;
  }
  std::vector<std::uint64_t> raw;
  raw.reserve(values.size());
  for (int i = 0; i < s.attribute_count(); ++i) {
    const auto& slot = values[static_cast<std::size_t>(i)];
    if (!slot.has_value())
      throw std::invalid_argument("parse error: event is missing attribute '" +
                                  s.attribute(i).name + "'");
    raw.push_back(*slot);
  }
  return {s, std::move(raw)};
}

}  // namespace subcover
