// Event-to-subscription matching.
#pragma once

#include <cstdint>
#include <vector>

#include "pubsub/event.h"
#include "pubsub/subscription.h"

namespace subcover {

// True iff every attribute value of e lies within the subscription's range.
bool matches(const subscription& s, const event& e);

// Indices of subscriptions matching e (brute force; brokers use this on
// their per-link tables, which covering keeps small).
std::vector<std::size_t> match_all(const std::vector<subscription>& subs, const event& e);

}  // namespace subcover
