// Lightweight contract checking.
//
// SUBCOVER_CHECK   - always-on invariant / precondition check; throws
//                    std::logic_error with file:line context on failure.
//                    Used at module boundaries where violations indicate a
//                    caller bug that must not be silently ignored.
// SUBCOVER_DCHECK  - debug-only variant (compiled out under NDEBUG) for hot
//                    internal invariants.
#pragma once

#include <stdexcept>
#include <string>

namespace subcover::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::string full = std::string("check failed: ") + expr + " at " + file + ":" +
                     std::to_string(line);
  if (!msg.empty()) full += ": " + msg;
  throw std::logic_error(full);
}

}  // namespace subcover::detail

#define SUBCOVER_CHECK(cond, ...)                                                       \
  do {                                                                                  \
    if (!(cond)) ::subcover::detail::check_failed(#cond, __FILE__, __LINE__,            \
                                                  ::std::string{__VA_ARGS__});          \
  } while (false)

#ifdef NDEBUG
#define SUBCOVER_DCHECK(cond, ...) \
  do {                             \
  } while (false)
#else
#define SUBCOVER_DCHECK(cond, ...) SUBCOVER_CHECK(cond, ##__VA_ARGS__)
#endif
