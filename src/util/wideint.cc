#include "util/wideint.h"

#include <bit>
#include <stdexcept>

namespace subcover {

namespace {
// __int128 is a GCC/Clang extension; __extension__ silences -Wpedantic.
__extension__ typedef unsigned __int128 u128;
constexpr std::size_t kW = u512::kWords;
}  // namespace

u512 u512::max() {
  u512 r;
  for (std::size_t i = 0; i < kW; ++i) r.w_[i] = ~std::uint64_t{0};
  return r;
}

u512 u512::pow2(int n) {
  if (n < 0 || n >= kBits) throw std::invalid_argument("u512::pow2: exponent out of range");
  u512 r;
  r.set_bit(n);
  return r;
}

u512 u512::mask(int n) {
  if (n < 0 || n > kBits) throw std::invalid_argument("u512::mask: width out of range");
  if (n == kBits) return max();
  u512 r;
  const int full = n / 64;
  for (int i = 0; i < full; ++i) r.w_[static_cast<std::size_t>(i)] = ~std::uint64_t{0};
  if (n % 64 != 0) r.w_[static_cast<std::size_t>(full)] = (std::uint64_t{1} << (n % 64)) - 1;
  return r;
}

bool u512::is_zero() const {
  for (const auto w : w_)
    if (w != 0) return false;
  return true;
}

int u512::bit_width() const {
  for (int i = kWords - 1; i >= 0; --i) {
    const auto w = w_[static_cast<std::size_t>(i)];
    if (w != 0) return i * 64 + std::bit_width(w);
  }
  return 0;
}

int u512::countr_zero() const {
  for (int i = 0; i < kWords; ++i) {
    const auto w = w_[static_cast<std::size_t>(i)];
    if (w != 0) return i * 64 + std::countr_zero(w);
  }
  return kBits;
}

u512 u512::bit_floor() const {
  const int width = bit_width();
  return width == 0 ? zero() : pow2(width - 1);
}

int u512::popcount() const {
  int c = 0;
  for (const auto w : w_) c += std::popcount(w);
  return c;
}

bool u512::bit(int i) const {
  if (i < 0 || i >= kBits) throw std::invalid_argument("u512::bit: index out of range");
  return (w_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 1U;
}

void u512::set_bit(int i, bool value) {
  if (i < 0 || i >= kBits) throw std::invalid_argument("u512::set_bit: index out of range");
  const auto m = std::uint64_t{1} << (i % 64);
  auto& w = w_[static_cast<std::size_t>(i / 64)];
  if (value)
    w |= m;
  else
    w &= ~m;
}

double u512::to_double() const { return static_cast<double>(to_long_double()); }

long double u512::to_long_double() const {
  long double r = 0.0L;
  for (int i = kWords - 1; i >= 0; --i) {
    r = r * 18446744073709551616.0L /* 2^64 */ + static_cast<long double>(w_[static_cast<std::size_t>(i)]);
  }
  return r;
}

std::string u512::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string s;
  bool leading = true;
  for (int i = kBits - 4; i >= 0; i -= 4) {
    const int nibble = static_cast<int>((w_[static_cast<std::size_t>(i / 64)] >> (i % 64)) & 0xF);
    if (leading && nibble == 0 && i != 0) continue;
    leading = false;
    s.push_back(kDigits[nibble]);
  }
  return s;
}

std::string u512::to_string() const {
  if (is_zero()) return "0";
  std::string digits;
  u512 v = *this;
  while (!v.is_zero()) {
    std::uint64_t rem = 0;
    v = v.div_u64(10, &rem);
    digits.push_back(static_cast<char>('0' + rem));
  }
  return {digits.rbegin(), digits.rend()};
}

u512& u512::operator+=(const u512& o) {
  u128 carry = 0;
  for (std::size_t i = 0; i < kW; ++i) {
    const u128 sum = static_cast<u128>(w_[i]) + o.w_[i] + carry;
    w_[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  return *this;
}

u512& u512::operator-=(const u512& o) {
  u128 borrow = 0;
  for (std::size_t i = 0; i < kW; ++i) {
    const u128 diff = static_cast<u128>(w_[i]) - o.w_[i] - borrow;
    w_[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) & 1;
  }
  return *this;
}

u512& u512::operator++() { return *this += one(); }
u512 u512::operator++(int) {
  u512 old = *this;
  ++*this;
  return old;
}
u512& u512::operator--() { return *this -= one(); }
u512 u512::operator--(int) {
  u512 old = *this;
  --*this;
  return old;
}

u512& u512::operator<<=(int n) {
  if (n < 0) throw std::invalid_argument("u512::operator<<=: negative shift");
  if (n >= kBits) {
    w_.fill(0);
    return *this;
  }
  const int word_shift = n / 64;
  const int bit_shift = n % 64;
  for (int i = kWords - 1; i >= 0; --i) {
    const int src = i - word_shift;
    std::uint64_t v = 0;
    if (src >= 0) {
      v = w_[static_cast<std::size_t>(src)] << bit_shift;
      if (bit_shift != 0 && src > 0) v |= w_[static_cast<std::size_t>(src - 1)] >> (64 - bit_shift);
    }
    w_[static_cast<std::size_t>(i)] = v;
  }
  return *this;
}

u512& u512::operator>>=(int n) {
  if (n < 0) throw std::invalid_argument("u512::operator>>=: negative shift");
  if (n >= kBits) {
    w_.fill(0);
    return *this;
  }
  const int word_shift = n / 64;
  const int bit_shift = n % 64;
  for (int i = 0; i < kWords; ++i) {
    const int src = i + word_shift;
    std::uint64_t v = 0;
    if (src < kWords) {
      v = w_[static_cast<std::size_t>(src)] >> bit_shift;
      if (bit_shift != 0 && src + 1 < kWords)
        v |= w_[static_cast<std::size_t>(src + 1)] << (64 - bit_shift);
    }
    w_[static_cast<std::size_t>(i)] = v;
  }
  return *this;
}

u512& u512::operator&=(const u512& o) {
  for (std::size_t i = 0; i < kW; ++i) w_[i] &= o.w_[i];
  return *this;
}
u512& u512::operator|=(const u512& o) {
  for (std::size_t i = 0; i < kW; ++i) w_[i] |= o.w_[i];
  return *this;
}
u512& u512::operator^=(const u512& o) {
  for (std::size_t i = 0; i < kW; ++i) w_[i] ^= o.w_[i];
  return *this;
}

u512 u512::mul_u64(std::uint64_t m) const {
  u512 r;
  u128 carry = 0;
  for (std::size_t i = 0; i < kW; ++i) {
    const u128 prod = static_cast<u128>(w_[i]) * m + carry;
    r.w_[i] = static_cast<std::uint64_t>(prod);
    carry = prod >> 64;
  }
  return r;
}

u512 u512::div_u64(std::uint64_t divisor, std::uint64_t* remainder) const {
  if (divisor == 0) throw std::invalid_argument("u512::div_u64: division by zero");
  u512 q;
  u128 rem = 0;
  for (int i = kWords - 1; i >= 0; --i) {
    const u128 cur = (rem << 64) | w_[static_cast<std::size_t>(i)];
    q.w_[static_cast<std::size_t>(i)] = static_cast<std::uint64_t>(cur / divisor);
    rem = cur % divisor;
  }
  if (remainder != nullptr) *remainder = static_cast<std::uint64_t>(rem);
  return q;
}

std::size_t u512::hash() const {
  // FNV-1a over the words; adequate for hash-map use in tests and tooling.
  std::size_t h = 1469598103934665603ULL;
  for (const auto w : w_) {
    h ^= static_cast<std::size_t>(w);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace subcover
