#include "util/simd_kernels.h"

#include <algorithm>
#include <bit>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SUBCOVER_SIMD_X86 1
#include <immintrin.h>
#else
#define SUBCOVER_SIMD_X86 0
#endif

namespace subcover::simd {

// ---- scalar backend: the reference semantics --------------------------------
// Every vector backend below is pinned byte-identical to these loops by
// tests/util/simd_kernels_test.cc; keep them boring.

namespace scalar {

std::uint64_t min_u64(const std::uint64_t* v, std::size_t n) {
  std::uint64_t m = ~std::uint64_t{0};
  for (std::size_t i = 0; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

std::uint64_t max_u64(const std::uint64_t* v, std::size_t n) {
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

std::uint64_t sum_u64(const std::uint64_t* v, std::size_t n) {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < n; ++i) s += v[i];
  return s;
}

void prefix_sum_u64(const std::uint64_t* in, std::uint64_t* out, std::size_t n) {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s += in[i];
    out[i] = s;
  }
}

void sub_u64(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void suffix_min_masked_u32(const std::uint32_t* rank, std::size_t n, std::uint32_t floor,
                           std::uint32_t* out) {
  std::uint32_t m = ~std::uint32_t{0};
  for (std::size_t i = n; i-- > 0;) {
    const std::uint32_t r = rank[i];
    if (r >= floor) m = std::min(m, r);
    out[i] = m;
  }
}

std::size_t lower_bound_u64(const std::uint64_t* keys, std::size_t n, std::uint64_t key) {
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 0) {
    const std::size_t half = len >> 1;
    if (keys[lo + half] < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return lo;
}

std::size_t lower_bound_kv_u64(const std::uint64_t* words, std::size_t first, std::size_t last,
                               std::uint64_t key) {
  std::size_t lo = first;
  std::size_t len = last - first;
  while (len > 0) {
    const std::size_t half = len >> 1;
    if (words[2 * (lo + half)] < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  return lo;
}

std::size_t first_geq_u64(const std::uint64_t* v, std::size_t begin, std::size_t n,
                          std::uint64_t key) {
  for (std::size_t i = begin; i < n; ++i) {
    if (v[i] >= key) return i;
  }
  return n;
}

std::size_t first_geq_u128(const u128* v, std::size_t begin, std::size_t n, u128 key) {
  for (std::size_t i = begin; i < n; ++i) {
    if (v[i] >= key) return i;
  }
  return n;
}

void contained_mask_u64(const std::uint64_t* lo, const std::uint64_t* hi, std::size_t n,
                        std::uint64_t qlo, std::uint64_t qhi, std::uint8_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(qlo <= lo[i] && hi[i] <= qhi ? 1 : 0);
  }
}

std::size_t head_rank_scan_u64(const std::uint64_t* extent, const std::uint64_t* lo,
                               std::size_t n) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (extent[i] > extent[best] || (extent[i] == extent[best] && lo[i] < lo[best])) best = i;
  }
  return best;
}

std::size_t coalesce_cubes_u64(const std::uint64_t* lo, std::size_t n, std::uint64_t cube_cells,
                               std::uint64_t* run_lo, std::uint64_t* run_hi) {
  std::size_t m = 0;
  run_lo[0] = lo[0];
  for (std::size_t i = 1; i < n; ++i) {
    if (lo[i] - lo[i - 1] != cube_cells) {
      run_hi[m] = lo[i - 1] + (cube_cells - 1);
      run_lo[++m] = lo[i];
    }
  }
  run_hi[m] = lo[n - 1] + (cube_cells - 1);
  return m + 1;
}

}  // namespace scalar

#if SUBCOVER_SIMD_X86

// ---- SSE4.2 backend ---------------------------------------------------------
// Two u64 lanes (four u32 lanes) per step. SSE4.2 is the floor tier because
// _mm_cmpgt_epi64 — the unsigned-compare building block after the sign flip —
// arrived with it.

namespace sse42 {

#define SUBCOVER_TGT __attribute__((target("sse4.2")))

namespace {

// Unsigned u64 compare via the sign-flip trick: flipping the top bit maps
// unsigned order onto the signed compare the ISA provides.
SUBCOVER_TGT inline __m128i sign64() {
  return _mm_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
}
SUBCOVER_TGT inline __m128i cmpgt_u64(__m128i a, __m128i b) {
  const __m128i s = sign64();
  return _mm_cmpgt_epi64(_mm_xor_si128(a, s), _mm_xor_si128(b, s));
}
SUBCOVER_TGT inline __m128i min_u64v(__m128i a, __m128i b) {
  return _mm_blendv_epi8(a, b, cmpgt_u64(a, b));
}
SUBCOVER_TGT inline __m128i max_u64v(__m128i a, __m128i b) {
  return _mm_blendv_epi8(b, a, cmpgt_u64(a, b));
}
SUBCOVER_TGT inline std::uint64_t lane0(__m128i v) {
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(v));
}
SUBCOVER_TGT inline std::uint64_t lane1(__m128i v) {
  return static_cast<std::uint64_t>(_mm_extract_epi64(v, 1));
}
SUBCOVER_TGT inline __m128i loadu(const std::uint64_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}
SUBCOVER_TGT inline __m128i loadu32(const std::uint32_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

}  // namespace

SUBCOVER_TGT std::uint64_t min_u64(const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m128i acc = _mm_set1_epi64x(-1);
  for (; i + 2 <= n; i += 2) acc = min_u64v(acc, loadu(v + i));
  std::uint64_t m = std::min(lane0(acc), lane1(acc));
  for (; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

SUBCOVER_TGT std::uint64_t max_u64(const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m128i acc = _mm_setzero_si128();
  for (; i + 2 <= n; i += 2) acc = max_u64v(acc, loadu(v + i));
  std::uint64_t m = std::max(lane0(acc), lane1(acc));
  for (; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

SUBCOVER_TGT std::uint64_t sum_u64(const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m128i acc = _mm_setzero_si128();
  for (; i + 2 <= n; i += 2) acc = _mm_add_epi64(acc, loadu(v + i));
  std::uint64_t s = lane0(acc) + lane1(acc);
  for (; i < n; ++i) s += v[i];
  return s;
}

SUBCOVER_TGT void prefix_sum_u64(const std::uint64_t* in, std::uint64_t* out, std::size_t n) {
  std::size_t i = 0;
  __m128i carry = _mm_setzero_si128();
  for (; i + 2 <= n; i += 2) {
    __m128i x = loadu(in + i);
    x = _mm_add_epi64(x, _mm_slli_si128(x, 8));  // [x0, x0+x1]
    x = _mm_add_epi64(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
    carry = _mm_shuffle_epi32(x, 0xEE);  // broadcast the high u64 lane
  }
  std::uint64_t s = lane0(carry);
  for (; i < n; ++i) {
    s += in[i];
    out[i] = s;
  }
}

SUBCOVER_TGT void sub_u64(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm_sub_epi64(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

SUBCOVER_TGT void suffix_min_masked_u32(const std::uint32_t* rank, std::size_t n,
                                        std::uint32_t floor, std::uint32_t* out) {
  // Right to left: scalar over the unaligned tail so the vector body sees
  // whole 4-lane blocks, then in-register suffix minima per block.
  std::uint32_t m = ~std::uint32_t{0};
  std::size_t i = n;
  const std::size_t aligned = n & ~std::size_t{3};
  while (i > aligned) {
    --i;
    const std::uint32_t r = rank[i];
    if (r >= floor) m = std::min(m, r);
    out[i] = m;
  }
  const __m128i s32 = _mm_set1_epi32(static_cast<int>(0x80000000U));
  const __m128i floor_x = _mm_set1_epi32(static_cast<int>(floor ^ 0x80000000U));
  const __m128i maxv = _mm_set1_epi32(-1);
  __m128i carry = _mm_set1_epi32(static_cast<int>(m));
  while (i >= 4) {
    i -= 4;
    __m128i x = loadu32(rank + i);
    // Lanes below the floor act as +infinity (they are already-answered
    // head ranks, see the scalar reference).
    const __m128i below = _mm_cmpgt_epi32(floor_x, _mm_xor_si128(x, s32));
    x = _mm_blendv_epi8(x, maxv, below);
    // In-block suffix minima: shift later lanes over earlier ones, filling
    // vacated lanes with +infinity (a plain byte shift fills with zeros,
    // which would poison the minimum).
    __m128i s1 = _mm_srli_si128(x, 4);
    s1 = _mm_blend_epi16(s1, maxv, 0xC0);
    x = _mm_min_epu32(x, s1);
    __m128i s2 = _mm_srli_si128(x, 8);
    s2 = _mm_blend_epi16(s2, maxv, 0xF0);
    x = _mm_min_epu32(x, s2);
    x = _mm_min_epu32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), x);
    carry = _mm_shuffle_epi32(x, 0x00);
  }
}

SUBCOVER_TGT std::size_t lower_bound_u64(const std::uint64_t* keys, std::size_t n,
                                         std::uint64_t key) {
  // Binary phase down to a small window, then a branch-free count of lanes
  // below the key: in a sorted window that count IS the partition offset.
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 16) {
    const std::size_t half = len >> 1;
    if (keys[lo + half] < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  const __m128i key_b = _mm_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  std::size_t lt = 0;
  for (; i + 2 <= len; i += 2) {
    const int mm = _mm_movemask_epi8(cmpgt_u64(key_b, loadu(keys + lo + i)));
    lt += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mm))) / 8;
  }
  for (; i < len; ++i) lt += keys[lo + i] < key ? 1 : 0;
  return lo + lt;
}

SUBCOVER_TGT std::size_t lower_bound_kv_u64(const std::uint64_t* words, std::size_t first,
                                            std::size_t last, std::uint64_t key) {
  std::size_t lo = first;
  std::size_t len = last - first;
  while (len > 16) {
    const std::size_t half = len >> 1;
    if (words[2 * (lo + half)] < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  const __m128i key_b = _mm_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  std::size_t lt = 0;
  for (; i + 2 <= len; i += 2) {
    // Two {key, payload} pairs per pair of loads; unpacklo gathers the keys
    // (lane order is irrelevant to a population count).
    const __m128i a = loadu(words + 2 * (lo + i));
    const __m128i b = loadu(words + 2 * (lo + i) + 2);
    const __m128i k = _mm_unpacklo_epi64(a, b);
    const int mm = _mm_movemask_epi8(cmpgt_u64(key_b, k));
    lt += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mm))) / 8;
  }
  for (; i < len; ++i) lt += words[2 * (lo + i)] < key ? 1 : 0;
  return lo + lt;
}

SUBCOVER_TGT std::size_t first_geq_u64(const std::uint64_t* v, std::size_t begin, std::size_t n,
                                       std::uint64_t key) {
  const __m128i key_b = _mm_set1_epi64x(static_cast<long long>(key));
  std::size_t i = begin;
  for (; i + 2 <= n; i += 2) {
    const unsigned lt = static_cast<unsigned>(_mm_movemask_epi8(cmpgt_u64(key_b, loadu(v + i))));
    const unsigned ge = ~lt & 0xFFFFU;
    if (ge != 0) return i + static_cast<std::size_t>(std::countr_zero(ge)) / 8;
  }
  for (; i < n; ++i) {
    if (v[i] >= key) return i;
  }
  return n;
}

std::size_t first_geq_u128(const u128* v, std::size_t begin, std::size_t n, u128 key) {
  // One u128 already fills a 128-bit register; the two-lane win only exists
  // at AVX2 width, so this tier keeps the scalar compare.
  return scalar::first_geq_u128(v, begin, n, key);
}

SUBCOVER_TGT void contained_mask_u64(const std::uint64_t* lo, const std::uint64_t* hi,
                                     std::size_t n, std::uint64_t qlo, std::uint64_t qhi,
                                     std::uint8_t* out) {
  const __m128i qlo_b = _mm_set1_epi64x(static_cast<long long>(qlo));
  const __m128i qhi_b = _mm_set1_epi64x(static_cast<long long>(qhi));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i bad =
        _mm_or_si128(cmpgt_u64(qlo_b, loadu(lo + i)), cmpgt_u64(loadu(hi + i), qhi_b));
    const unsigned mm = static_cast<unsigned>(_mm_movemask_epi8(bad));
    out[i] = static_cast<std::uint8_t>(((mm >> 0) & 1U) ^ 1U);
    out[i + 1] = static_cast<std::uint8_t>(((mm >> 8) & 1U) ^ 1U);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(qlo <= lo[i] && hi[i] <= qhi ? 1 : 0);
  }
}

SUBCOVER_TGT std::size_t head_rank_scan_u64(const std::uint64_t* extent, const std::uint64_t* lo,
                                            std::size_t n) {
  // Three branch-free passes: the max extent, the min lo among its holders,
  // then the first index carrying both. Ties resolve exactly as the scalar
  // keep-first loop (the first (max extent, min lo) lane is the answer).
  const std::uint64_t m = max_u64(extent, n);
  const __m128i m_b = _mm_set1_epi64x(static_cast<long long>(m));
  const __m128i maxv = _mm_set1_epi64x(-1);
  __m128i acc = maxv;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i eq = _mm_cmpeq_epi64(loadu(extent + i), m_b);
    acc = min_u64v(acc, _mm_blendv_epi8(maxv, loadu(lo + i), eq));
  }
  std::uint64_t minlo = std::min(lane0(acc), lane1(acc));
  for (; i < n; ++i) {
    if (extent[i] == m) minlo = std::min(minlo, lo[i]);
  }
  const __m128i minlo_b = _mm_set1_epi64x(static_cast<long long>(minlo));
  for (i = 0; i + 2 <= n; i += 2) {
    const __m128i both = _mm_and_si128(_mm_cmpeq_epi64(loadu(extent + i), m_b),
                                       _mm_cmpeq_epi64(loadu(lo + i), minlo_b));
    const unsigned mm = static_cast<unsigned>(_mm_movemask_epi8(both));
    if (mm != 0) return i + static_cast<std::size_t>(std::countr_zero(mm)) / 8;
  }
  for (; i < n; ++i) {
    if (extent[i] == m && lo[i] == minlo) return i;
  }
  return 0;  // unreachable: the (m, minlo) lane exists by construction
}

SUBCOVER_TGT std::size_t coalesce_cubes_u64(const std::uint64_t* lo, std::size_t n,
                                            std::uint64_t cube_cells, std::uint64_t* run_lo,
                                            std::uint64_t* run_hi) {
  const __m128i cube_b = _mm_set1_epi64x(static_cast<long long>(cube_cells));
  std::size_t m = 0;
  run_lo[0] = lo[0];
  std::size_t i = 1;
  while (i + 2 <= n) {
    // Clustered frontiers chain for long stretches: skip whole blocks whose
    // pairwise gaps all equal the cube size, fall back per-lane otherwise.
    const __m128i d = _mm_sub_epi64(loadu(lo + i), loadu(lo + i - 1));
    const unsigned mm = static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi64(d, cube_b)));
    if (mm == 0xFFFFU) {
      i += 2;
      continue;
    }
    for (const std::size_t end = i + 2; i < end; ++i) {
      if (lo[i] - lo[i - 1] != cube_cells) {
        run_hi[m] = lo[i - 1] + (cube_cells - 1);
        run_lo[++m] = lo[i];
      }
    }
  }
  for (; i < n; ++i) {
    if (lo[i] - lo[i - 1] != cube_cells) {
      run_hi[m] = lo[i - 1] + (cube_cells - 1);
      run_lo[++m] = lo[i];
    }
  }
  run_hi[m] = lo[n - 1] + (cube_cells - 1);
  return m + 1;
}

#undef SUBCOVER_TGT

}  // namespace sse42

// ---- AVX2 backend -----------------------------------------------------------
// Four u64 lanes (eight u32 lanes) per step; same sign-flip compares, plus
// lane-crossing permutes for the prefix/suffix scans.

namespace avx2 {

#define SUBCOVER_TGT __attribute__((target("avx2")))

namespace {

SUBCOVER_TGT inline __m256i sign64() {
  return _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
}
SUBCOVER_TGT inline __m256i cmpgt_u64(__m256i a, __m256i b) {
  const __m256i s = sign64();
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, s), _mm256_xor_si256(b, s));
}
SUBCOVER_TGT inline __m256i min_u64v(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(a, b, cmpgt_u64(a, b));
}
SUBCOVER_TGT inline __m256i max_u64v(__m256i a, __m256i b) {
  return _mm256_blendv_epi8(b, a, cmpgt_u64(a, b));
}
SUBCOVER_TGT inline __m256i loadu(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
SUBCOVER_TGT inline __m256i loadu32(const std::uint32_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}
SUBCOVER_TGT inline std::uint64_t hmin(__m256i v) {
  alignas(32) std::uint64_t w[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(w), v);
  return std::min(std::min(w[0], w[1]), std::min(w[2], w[3]));
}
SUBCOVER_TGT inline std::uint64_t hmax(__m256i v) {
  alignas(32) std::uint64_t w[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(w), v);
  return std::max(std::max(w[0], w[1]), std::max(w[2], w[3]));
}

}  // namespace

SUBCOVER_TGT std::uint64_t min_u64(const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_set1_epi64x(-1);
  for (; i + 4 <= n; i += 4) acc = min_u64v(acc, loadu(v + i));
  std::uint64_t m = hmin(acc);
  for (; i < n; ++i) m = std::min(m, v[i]);
  return m;
}

SUBCOVER_TGT std::uint64_t max_u64(const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) acc = max_u64v(acc, loadu(v + i));
  std::uint64_t m = hmax(acc);
  for (; i < n; ++i) m = std::max(m, v[i]);
  return m;
}

SUBCOVER_TGT std::uint64_t sum_u64(const std::uint64_t* v, std::size_t n) {
  std::size_t i = 0;
  __m256i acc = _mm256_setzero_si256();
  for (; i + 4 <= n; i += 4) acc = _mm256_add_epi64(acc, loadu(v + i));
  alignas(32) std::uint64_t w[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(w), acc);
  std::uint64_t s = w[0] + w[1] + w[2] + w[3];
  for (; i < n; ++i) s += v[i];
  return s;
}

// In-register inclusive scan of 4 u64 lanes: within each 128-bit half,
// then the low half's total (lane 1 after the first step) added into the
// high half.
SUBCOVER_TGT inline __m256i scan4_u64(__m256i x) {
  x = _mm256_add_epi64(x, _mm256_slli_si256(x, 8));
  const __m256i low_total = _mm256_permute4x64_epi64(x, 0x55);  // broadcast lane 1
  return _mm256_add_epi64(x, _mm256_blend_epi32(_mm256_setzero_si256(), low_total, 0xF0));
}

SUBCOVER_TGT void prefix_sum_u64(const std::uint64_t* in, std::uint64_t* out, std::size_t n) {
  __m256i carry = _mm256_setzero_si256();
  std::size_t i = 0;
  // 16-lane blocks: the four vector scans are independent, and the block
  // totals chain through plain adds, so the loop-carried dependency is one
  // add per 16 lanes instead of a permute + add per 4 — the vector-vs-
  // scalar win comes from breaking that latency chain, not lane width (a
  // scalar scan is also one add per lane).
  for (; i + 16 <= n; i += 16) {
    const __m256i x0 = scan4_u64(loadu(in + i));
    const __m256i x1 = scan4_u64(loadu(in + i + 4));
    const __m256i x2 = scan4_u64(loadu(in + i + 8));
    const __m256i x3 = scan4_u64(loadu(in + i + 12));
    const __m256i t0 = _mm256_permute4x64_epi64(x0, 0xFF);  // block totals
    const __m256i t1 = _mm256_permute4x64_epi64(x1, 0xFF);
    const __m256i t2 = _mm256_permute4x64_epi64(x2, 0xFF);
    const __m256i t3 = _mm256_permute4x64_epi64(x3, 0xFF);
    const __m256i o2 = _mm256_add_epi64(t0, t1);
    const __m256i o3 = _mm256_add_epi64(o2, t2);
    const __m256i o4 = _mm256_add_epi64(o3, t3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_add_epi64(x0, carry));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                        _mm256_add_epi64(x1, _mm256_add_epi64(t0, carry)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                        _mm256_add_epi64(x2, _mm256_add_epi64(o2, carry)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 12),
                        _mm256_add_epi64(x3, _mm256_add_epi64(o3, carry)));
    carry = _mm256_add_epi64(carry, o4);  // the only loop-carried add
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i x = _mm256_add_epi64(scan4_u64(loadu(in + i)), carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    carry = _mm256_permute4x64_epi64(x, 0xFF);  // broadcast lane 3
  }
  std::uint64_t s = static_cast<std::uint64_t>(_mm256_extract_epi64(carry, 0));
  for (; i < n; ++i) {
    s += in[i];
    out[i] = s;
  }
}

SUBCOVER_TGT void sub_u64(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
                          std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_sub_epi64(loadu(a + i), loadu(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

SUBCOVER_TGT void suffix_min_masked_u32(const std::uint32_t* rank, std::size_t n,
                                        std::uint32_t floor, std::uint32_t* out) {
  std::uint32_t m = ~std::uint32_t{0};
  std::size_t i = n;
  const std::size_t aligned = n & ~std::size_t{7};
  while (i > aligned) {
    --i;
    const std::uint32_t r = rank[i];
    if (r >= floor) m = std::min(m, r);
    out[i] = m;
  }
  const __m256i s32 = _mm256_set1_epi32(static_cast<int>(0x80000000U));
  const __m256i floor_x = _mm256_set1_epi32(static_cast<int>(floor ^ 0x80000000U));
  const __m256i maxv = _mm256_set1_epi32(-1);
  // Lane-crossing right shifts by 1/2/4 u32 lanes; vacated lanes refilled
  // with +infinity through the blend masks.
  const __m256i idx1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 7);
  const __m256i idx2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 7, 7);
  const __m256i idx4 = _mm256_setr_epi32(4, 5, 6, 7, 7, 7, 7, 7);
  __m256i carry = _mm256_set1_epi32(static_cast<int>(m));
  while (i >= 8) {
    i -= 8;
    __m256i x = loadu32(rank + i);
    const __m256i below = _mm256_cmpgt_epi32(floor_x, _mm256_xor_si256(x, s32));
    x = _mm256_blendv_epi8(x, maxv, below);
    x = _mm256_min_epu32(x, _mm256_blend_epi32(_mm256_permutevar8x32_epi32(x, idx1), maxv, 0x80));
    x = _mm256_min_epu32(x, _mm256_blend_epi32(_mm256_permutevar8x32_epi32(x, idx2), maxv, 0xC0));
    x = _mm256_min_epu32(x, _mm256_blend_epi32(_mm256_permutevar8x32_epi32(x, idx4), maxv, 0xF0));
    x = _mm256_min_epu32(x, carry);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
    carry = _mm256_permutevar8x32_epi32(x, _mm256_setzero_si256());  // broadcast lane 0
  }
}

SUBCOVER_TGT std::size_t lower_bound_u64(const std::uint64_t* keys, std::size_t n,
                                         std::uint64_t key) {
  std::size_t lo = 0;
  std::size_t len = n;
  while (len > 32) {
    const std::size_t half = len >> 1;
    if (keys[lo + half] < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  const __m256i key_b = _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  std::size_t lt = 0;
  for (; i + 4 <= len; i += 4) {
    const int mm = _mm256_movemask_epi8(cmpgt_u64(key_b, loadu(keys + lo + i)));
    lt += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mm))) / 8;
  }
  for (; i < len; ++i) lt += keys[lo + i] < key ? 1 : 0;
  return lo + lt;
}

SUBCOVER_TGT std::size_t lower_bound_kv_u64(const std::uint64_t* words, std::size_t first,
                                            std::size_t last, std::uint64_t key) {
  std::size_t lo = first;
  std::size_t len = last - first;
  while (len > 32) {
    const std::size_t half = len >> 1;
    if (words[2 * (lo + half)] < key) {
      lo += half + 1;
      len -= half + 1;
    } else {
      len = half;
    }
  }
  const __m256i key_b = _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = 0;
  std::size_t lt = 0;
  for (; i + 4 <= len; i += 4) {
    // Four {key, payload} pairs per pair of loads; unpacklo gathers the keys
    // (lane order is irrelevant to a population count).
    const __m256i a = loadu(words + 2 * (lo + i));
    const __m256i b = loadu(words + 2 * (lo + i) + 4);
    const __m256i k = _mm256_unpacklo_epi64(a, b);
    const int mm = _mm256_movemask_epi8(cmpgt_u64(key_b, k));
    lt += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(mm))) / 8;
  }
  for (; i < len; ++i) lt += words[2 * (lo + i)] < key ? 1 : 0;
  return lo + lt;
}

SUBCOVER_TGT std::size_t first_geq_u64(const std::uint64_t* v, std::size_t begin, std::size_t n,
                                       std::uint64_t key) {
  const __m256i key_b = _mm256_set1_epi64x(static_cast<long long>(key));
  std::size_t i = begin;
  for (; i + 4 <= n; i += 4) {
    const unsigned lt = static_cast<unsigned>(_mm256_movemask_epi8(cmpgt_u64(key_b, loadu(v + i))));
    const unsigned ge = ~lt;
    if (ge != 0) return i + static_cast<std::size_t>(std::countr_zero(ge)) / 8;
  }
  for (; i < n; ++i) {
    if (v[i] >= key) return i;
  }
  return n;
}

SUBCOVER_TGT std::size_t first_geq_u128(const u128* v, std::size_t begin, std::size_t n,
                                        u128 key) {
  // Two u128 lanes per 256-bit load: [lo0, hi0, lo1, hi1]. The pairwise
  // compare broadcasts each lane's high/low word across its pair, so one
  // (gt_hi | (eq_hi & ge_lo)) evaluates both endpoints at once.
  const std::uint64_t klo = static_cast<std::uint64_t>(key);
  const std::uint64_t khi = static_cast<std::uint64_t>(key >> 64);
  const __m256i klo_b = _mm256_set1_epi64x(static_cast<long long>(klo));
  const __m256i khi_b = _mm256_set1_epi64x(static_cast<long long>(khi));
  std::size_t i = begin;
  for (; i + 2 <= n; i += 2) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    const __m256i his = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(3, 3, 1, 1));
    const __m256i los = _mm256_permute4x64_epi64(x, _MM_SHUFFLE(2, 2, 0, 0));
    const __m256i gt_hi = cmpgt_u64(his, khi_b);
    const __m256i eq_hi = _mm256_cmpeq_epi64(his, khi_b);
    const __m256i lt_lo = cmpgt_u64(klo_b, los);
    const __m256i geq =
        _mm256_or_si256(gt_hi, _mm256_andnot_si256(lt_lo, eq_hi));
    const unsigned mm = static_cast<unsigned>(_mm256_movemask_epi8(geq));
    if ((mm & 0x1U) != 0) return i;
    if ((mm & 0x10000U) != 0) return i + 1;
  }
  for (; i < n; ++i) {
    if (v[i] >= key) return i;
  }
  return n;
}

SUBCOVER_TGT void contained_mask_u64(const std::uint64_t* lo, const std::uint64_t* hi,
                                     std::size_t n, std::uint64_t qlo, std::uint64_t qhi,
                                     std::uint8_t* out) {
  const __m256i qlo_b = _mm256_set1_epi64x(static_cast<long long>(qlo));
  const __m256i qhi_b = _mm256_set1_epi64x(static_cast<long long>(qhi));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i bad =
        _mm256_or_si256(cmpgt_u64(qlo_b, loadu(lo + i)), cmpgt_u64(loadu(hi + i), qhi_b));
    const unsigned mm = static_cast<unsigned>(_mm256_movemask_epi8(bad));
    out[i] = static_cast<std::uint8_t>(((mm >> 0) & 1U) ^ 1U);
    out[i + 1] = static_cast<std::uint8_t>(((mm >> 8) & 1U) ^ 1U);
    out[i + 2] = static_cast<std::uint8_t>(((mm >> 16) & 1U) ^ 1U);
    out[i + 3] = static_cast<std::uint8_t>(((mm >> 24) & 1U) ^ 1U);
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint8_t>(qlo <= lo[i] && hi[i] <= qhi ? 1 : 0);
  }
}

SUBCOVER_TGT std::size_t head_rank_scan_u64(const std::uint64_t* extent, const std::uint64_t* lo,
                                            std::size_t n) {
  const std::uint64_t m = max_u64(extent, n);
  const __m256i m_b = _mm256_set1_epi64x(static_cast<long long>(m));
  const __m256i maxv = _mm256_set1_epi64x(-1);
  __m256i acc = maxv;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i eq = _mm256_cmpeq_epi64(loadu(extent + i), m_b);
    acc = min_u64v(acc, _mm256_blendv_epi8(maxv, loadu(lo + i), eq));
  }
  std::uint64_t minlo = hmin(acc);
  for (; i < n; ++i) {
    if (extent[i] == m) minlo = std::min(minlo, lo[i]);
  }
  const __m256i minlo_b = _mm256_set1_epi64x(static_cast<long long>(minlo));
  for (i = 0; i + 4 <= n; i += 4) {
    const __m256i both = _mm256_and_si256(_mm256_cmpeq_epi64(loadu(extent + i), m_b),
                                          _mm256_cmpeq_epi64(loadu(lo + i), minlo_b));
    const unsigned mm = static_cast<unsigned>(_mm256_movemask_epi8(both));
    if (mm != 0) return i + static_cast<std::size_t>(std::countr_zero(mm)) / 8;
  }
  for (; i < n; ++i) {
    if (extent[i] == m && lo[i] == minlo) return i;
  }
  return 0;  // unreachable: the (m, minlo) lane exists by construction
}

SUBCOVER_TGT std::size_t coalesce_cubes_u64(const std::uint64_t* lo, std::size_t n,
                                            std::uint64_t cube_cells, std::uint64_t* run_lo,
                                            std::uint64_t* run_hi) {
  const __m256i cube_b = _mm256_set1_epi64x(static_cast<long long>(cube_cells));
  std::size_t m = 0;
  run_lo[0] = lo[0];
  std::size_t i = 1;
  while (i + 4 <= n) {
    const __m256i d = _mm256_sub_epi64(loadu(lo + i), loadu(lo + i - 1));
    const unsigned mm =
        static_cast<unsigned>(_mm256_movemask_epi8(_mm256_cmpeq_epi64(d, cube_b)));
    if (mm == 0xFFFFFFFFU) {
      i += 4;  // the whole block chains onto the open run
      continue;
    }
    for (const std::size_t end = i + 4; i < end; ++i) {
      if (lo[i] - lo[i - 1] != cube_cells) {
        run_hi[m] = lo[i - 1] + (cube_cells - 1);
        run_lo[++m] = lo[i];
      }
    }
  }
  for (; i < n; ++i) {
    if (lo[i] - lo[i - 1] != cube_cells) {
      run_hi[m] = lo[i - 1] + (cube_cells - 1);
      run_lo[++m] = lo[i];
    }
  }
  run_hi[m] = lo[n - 1] + (cube_cells - 1);
  return m + 1;
}

#undef SUBCOVER_TGT

}  // namespace avx2

#else  // !SUBCOVER_SIMD_X86

// Non-x86 builds: the vector backends forward to scalar so call sites,
// tests and benches compile unchanged (dispatch never selects them — the
// CPUID probe reports scalar).

#define SUBCOVER_FWD_BACKEND(ns)                                                               \
  namespace ns {                                                                               \
  std::uint64_t min_u64(const std::uint64_t* v, std::size_t n) { return scalar::min_u64(v, n); } \
  std::uint64_t max_u64(const std::uint64_t* v, std::size_t n) { return scalar::max_u64(v, n); } \
  std::uint64_t sum_u64(const std::uint64_t* v, std::size_t n) { return scalar::sum_u64(v, n); } \
  void prefix_sum_u64(const std::uint64_t* in, std::uint64_t* out, std::size_t n) {            \
    scalar::prefix_sum_u64(in, out, n);                                                        \
  }                                                                                            \
  void sub_u64(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,             \
               std::size_t n) {                                                                \
    scalar::sub_u64(a, b, out, n);                                                             \
  }                                                                                            \
  void suffix_min_masked_u32(const std::uint32_t* rank, std::size_t n, std::uint32_t floor,    \
                             std::uint32_t* out) {                                             \
    scalar::suffix_min_masked_u32(rank, n, floor, out);                                        \
  }                                                                                            \
  std::size_t lower_bound_u64(const std::uint64_t* keys, std::size_t n, std::uint64_t key) {   \
    return scalar::lower_bound_u64(keys, n, key);                                              \
  }                                                                                            \
  std::size_t lower_bound_kv_u64(const std::uint64_t* words, std::size_t first,                \
                                 std::size_t last, std::uint64_t key) {                        \
    return scalar::lower_bound_kv_u64(words, first, last, key);                                \
  }                                                                                            \
  std::size_t first_geq_u64(const std::uint64_t* v, std::size_t begin, std::size_t n,          \
                            std::uint64_t key) {                                               \
    return scalar::first_geq_u64(v, begin, n, key);                                            \
  }                                                                                            \
  std::size_t first_geq_u128(const u128* v, std::size_t begin, std::size_t n, u128 key) {      \
    return scalar::first_geq_u128(v, begin, n, key);                                           \
  }                                                                                            \
  void contained_mask_u64(const std::uint64_t* lo, const std::uint64_t* hi, std::size_t n,     \
                          std::uint64_t qlo, std::uint64_t qhi, std::uint8_t* out) {           \
    scalar::contained_mask_u64(lo, hi, n, qlo, qhi, out);                                      \
  }                                                                                            \
  std::size_t head_rank_scan_u64(const std::uint64_t* extent, const std::uint64_t* lo,         \
                                 std::size_t n) {                                              \
    return scalar::head_rank_scan_u64(extent, lo, n);                                          \
  }                                                                                            \
  std::size_t coalesce_cubes_u64(const std::uint64_t* lo, std::size_t n,                       \
                                 std::uint64_t cube_cells, std::uint64_t* run_lo,              \
                                 std::uint64_t* run_hi) {                                      \
    return scalar::coalesce_cubes_u64(lo, n, cube_cells, run_lo, run_hi);                      \
  }                                                                                            \
  }

SUBCOVER_FWD_BACKEND(sse42)
SUBCOVER_FWD_BACKEND(avx2)

#undef SUBCOVER_FWD_BACKEND

#endif  // SUBCOVER_SIMD_X86

}  // namespace subcover::simd
