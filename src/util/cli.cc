#include "util/cli.h"

#include <stdexcept>

namespace subcover {

cli_flags::cli_flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("cli_flags: expected --name[=value], got '" + arg + "'");
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg] = "true";
    } else {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    known_[name] = false;
  }
}

std::int64_t cli_flags::get_int(const std::string& name, std::int64_t def) {
  known_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("cli_flags: --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double cli_flags::get_double(const std::string& name, double def) {
  known_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing characters");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("cli_flags: --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

bool cli_flags::get_bool(const std::string& name, bool def) {
  known_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("cli_flags: --" + name + " expects true/false, got '" +
                              it->second + "'");
}

std::string cli_flags::get_string(const std::string& name, const std::string& def) {
  known_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

void cli_flags::finish() const {
  for (const auto& [name, used] : known_) {
    if (!used) throw std::invalid_argument("cli_flags: unknown flag --" + name);
  }
}

}  // namespace subcover
