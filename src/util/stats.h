// Summary statistics and least-squares fitting for the benchmark harness.
//
// `summary` condenses a sample into the moments and quantiles the benches
// report. `linear_fit` performs ordinary least squares; benches use it on
// log-log data to estimate scaling exponents (e.g. the d-1 growth of
// exhaustive point dominance, paper Theorem 4.1).
#pragma once

#include <cstddef>
#include <vector>

namespace subcover {

struct summary {
  std::size_t count = 0;
  double mean = 0;
  double stdev = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

// Computes a summary of the sample. Returns a zeroed summary for empty input.
summary summarize(std::vector<double> values);

// Quantile via linear interpolation on the sorted sample, q in [0,1].
// Throws std::invalid_argument on empty input or q outside [0,1].
double quantile(std::vector<double> values, double q);

struct fit_result {
  double slope = 0;
  double intercept = 0;
  double r2 = 0;  // coefficient of determination
};

// Ordinary least-squares fit y ~ slope*x + intercept.
// Throws std::invalid_argument if sizes differ or fewer than two points.
fit_result linear_fit(const std::vector<double>& xs, const std::vector<double>& ys);

// Convenience: fit on (log2 x, log2 y); slope is then the scaling exponent.
// All inputs must be positive.
fit_result loglog_fit(const std::vector<double>& xs, const std::vector<double>& ys);

// Online mean/variance accumulator (Welford).
class accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance; 0 if n < 2
  [[nodiscard]] double stdev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double total() const { return total_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double total_ = 0;
};

}  // namespace subcover
