// simd_kernels — runtime-dispatched batch primitives over contiguous lane
// arrays, the data-parallel layer under query_plan's struct-of-arrays level
// frontier and the sfcarray probe cursors.
//
// Layout contract: every kernel operates on plain contiguous columns —
// u64 key lanes (`lo[]`, `hi[]`, extents), u32 rank lanes, or u128 range
// endpoints (two u64 lanes each, little-endian as the type is in memory).
// There is no AoS view anywhere in the kernel layer; consumers that need
// `basic_key_range<K>` materialize it after the kernels have done the
// ordering/selection work on the columns.
//
// Dispatch: three complete backends — `scalar` (portable reference),
// `sse42`, `avx2` — with the top-level functions selecting once via the
// cached CPUID probe (util/cpu_features.h; SUBCOVER_FORCE_SCALAR pins the
// process to `scalar`). The backends are public on purpose: the property
// tests (tests/util/simd_kernels_test.cc) pin sse42/avx2 byte-identical to
// scalar on adversarial inputs, and the BM_SimdKernels benches measure each
// tier against the same data. On non-x86 builds the sse42/avx2 backends
// forward to scalar, so callers and tests compile everywhere.
//
// Exactness contract: every kernel is bit-exact, not approximately equal —
// same answer, same index, same tie-break as its scalar reference on every
// input (including empty, single-lane, odd-length tails and duplicate
// lanes). That is what lets query_plan keep its byte-identity guarantees
// while swapping implementations per dominance_options::simd.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"
#include "util/wideint.h"

namespace subcover::simd {

// Each backend implements the full kernel set with identical signatures and
// identical answers. See the scalar definitions in simd_kernels.cc for the
// reference semantics of each primitive.
#define SUBCOVER_SIMD_KERNEL_SET                                                             \
  /* Reductions over u64 lanes. Empty input: min -> UINT64_MAX, max -> 0,                    \
     sum -> 0. sum wraps mod 2^64 exactly like the scalar loop. */                           \
  [[nodiscard]] std::uint64_t min_u64(const std::uint64_t* v, std::size_t n);                \
  [[nodiscard]] std::uint64_t max_u64(const std::uint64_t* v, std::size_t n);                \
  [[nodiscard]] std::uint64_t sum_u64(const std::uint64_t* v, std::size_t n);                \
  /* Inclusive prefix sum (out[i] = in[0] + ... + in[i], mod 2^64).                          \
     in == out is allowed. */                                                                \
  void prefix_sum_u64(const std::uint64_t* in, std::uint64_t* out, std::size_t n);           \
  /* out[i] = a[i] - b[i] (mod 2^64); any aliasing of out with a/b is fine. */               \
  void sub_u64(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,           \
               std::size_t n);                                                               \
  /* Right-to-left running minimum over u32 ranks with a floor mask:                         \
     lanes with rank[i] < floor are treated as UINT32_MAX (already-answered                  \
     head ranks must not hold a sweep open), and                                             \
     out[i] = min over j >= i of masked rank[j]. rank == out is allowed. */                  \
  void suffix_min_masked_u32(const std::uint32_t* rank, std::size_t n, std::uint32_t floor,  \
                             std::uint32_t* out);                                            \
  /* Partition point over a sorted (non-decreasing) u64 column: the first                    \
     index with keys[i] >= key; n if none. */                                                \
  [[nodiscard]] std::size_t lower_bound_u64(const std::uint64_t* keys, std::size_t n,        \
                                            std::uint64_t key);                              \
  /* Same partition point over interleaved {key, payload} u64 pairs (the                     \
     sorted-vector array's 16-byte entries): keys live at words[2*i], the                    \
     search window is pair indices [first, last), and the returned index is                  \
     a pair index. Pairs are sorted by (key, payload); a key-only bound is                   \
     exactly std::lower_bound against probe {key, 0}. */                                     \
  [[nodiscard]] std::size_t lower_bound_kv_u64(const std::uint64_t* words, std::size_t first,\
                                               std::size_t last, std::uint64_t key);         \
  /* Forward linear scan (resumed cursors over short windows): the first                     \
     index i >= begin with v[i] >= key; n if none. No sortedness assumed. */                 \
  [[nodiscard]] std::size_t first_geq_u64(const std::uint64_t* v, std::size_t begin,         \
                                          std::size_t n, std::uint64_t key);                 \
  /* Same scan over u128 lanes (two u64 words per lane, pairwise compare). */                \
  [[nodiscard]] std::size_t first_geq_u128(const u128* v, std::size_t begin, std::size_t n,  \
                                           u128 key);                                        \
  /* Batched interval containment: out[i] = (qlo <= lo[i] && hi[i] <= qhi)                   \
     ? 1 : 0 — "is envelope i fully inside the query range". */                              \
  void contained_mask_u64(const std::uint64_t* lo, const std::uint64_t* hi, std::size_t n,   \
                          std::uint64_t qlo, std::uint64_t qhi, std::uint8_t* out);          \
  /* Argbest under the plan's probe order (probes_before): the index of the                  \
     lane with the largest extent, ties broken by the smallest lo, further                   \
     ties by the smallest index. Requires n > 0. */                                          \
  [[nodiscard]] std::size_t head_rank_scan_u64(const std::uint64_t* extent,                  \
                                               const std::uint64_t* lo, std::size_t n);      \
  /* Coalesces n sorted, distinct, cube-aligned level-frontier lows (each                    \
     cube spanning `cube_cells` keys) into maximal runs:                                     \
     run_lo/run_hi receive the merged [lo, hi] endpoints (inclusive), and                    \
     the run count is returned. Requires n > 0 and cube_cells >= 1; two                      \
     cubes chain exactly when lo[i] - lo[i-1] == cube_cells (equal-size                      \
     aligned cubes can never be closer). Byte-identical to                                   \
     merge_ranges_inplace on the same cubes. */                                              \
  [[nodiscard]] std::size_t coalesce_cubes_u64(const std::uint64_t* lo, std::size_t n,       \
                                               std::uint64_t cube_cells,                     \
                                               std::uint64_t* run_lo, std::uint64_t* run_hi);

namespace scalar {
SUBCOVER_SIMD_KERNEL_SET
}
namespace sse42 {
SUBCOVER_SIMD_KERNEL_SET
}
namespace avx2 {
SUBCOVER_SIMD_KERNEL_SET
}

#undef SUBCOVER_SIMD_KERNEL_SET

// ---- dispatched entry points ------------------------------------------------
// One cached level read, then a perfectly predicted two-way branch. These are
// what production call sites use; tests and benches may call the backends
// directly.

#define SUBCOVER_SIMD_DISPATCH(call)                       \
  switch (cpu_features().simd) {                           \
    case simd_level::avx2:                                 \
      return avx2::call;                                   \
    case simd_level::sse42:                                \
      return sse42::call;                                  \
    case simd_level::scalar:                               \
      break;                                               \
  }                                                        \
  return scalar::call

[[nodiscard]] inline std::uint64_t min_u64(const std::uint64_t* v, std::size_t n) {
  SUBCOVER_SIMD_DISPATCH(min_u64(v, n));
}
[[nodiscard]] inline std::uint64_t max_u64(const std::uint64_t* v, std::size_t n) {
  SUBCOVER_SIMD_DISPATCH(max_u64(v, n));
}
[[nodiscard]] inline std::uint64_t sum_u64(const std::uint64_t* v, std::size_t n) {
  SUBCOVER_SIMD_DISPATCH(sum_u64(v, n));
}
inline void prefix_sum_u64(const std::uint64_t* in, std::uint64_t* out, std::size_t n) {
  SUBCOVER_SIMD_DISPATCH(prefix_sum_u64(in, out, n));
}
inline void sub_u64(const std::uint64_t* a, const std::uint64_t* b, std::uint64_t* out,
                    std::size_t n) {
  SUBCOVER_SIMD_DISPATCH(sub_u64(a, b, out, n));
}
inline void suffix_min_masked_u32(const std::uint32_t* rank, std::size_t n, std::uint32_t floor,
                                  std::uint32_t* out) {
  SUBCOVER_SIMD_DISPATCH(suffix_min_masked_u32(rank, n, floor, out));
}
[[nodiscard]] inline std::size_t lower_bound_u64(const std::uint64_t* keys, std::size_t n,
                                                 std::uint64_t key) {
  SUBCOVER_SIMD_DISPATCH(lower_bound_u64(keys, n, key));
}
[[nodiscard]] inline std::size_t lower_bound_kv_u64(const std::uint64_t* words,
                                                    std::size_t first, std::size_t last,
                                                    std::uint64_t key) {
  SUBCOVER_SIMD_DISPATCH(lower_bound_kv_u64(words, first, last, key));
}
[[nodiscard]] inline std::size_t first_geq_u64(const std::uint64_t* v, std::size_t begin,
                                               std::size_t n, std::uint64_t key) {
  SUBCOVER_SIMD_DISPATCH(first_geq_u64(v, begin, n, key));
}
[[nodiscard]] inline std::size_t first_geq_u128(const u128* v, std::size_t begin, std::size_t n,
                                                u128 key) {
  SUBCOVER_SIMD_DISPATCH(first_geq_u128(v, begin, n, key));
}
inline void contained_mask_u64(const std::uint64_t* lo, const std::uint64_t* hi, std::size_t n,
                               std::uint64_t qlo, std::uint64_t qhi, std::uint8_t* out) {
  SUBCOVER_SIMD_DISPATCH(contained_mask_u64(lo, hi, n, qlo, qhi, out));
}
[[nodiscard]] inline std::size_t head_rank_scan_u64(const std::uint64_t* extent,
                                                    const std::uint64_t* lo, std::size_t n) {
  SUBCOVER_SIMD_DISPATCH(head_rank_scan_u64(extent, lo, n));
}
[[nodiscard]] inline std::size_t coalesce_cubes_u64(const std::uint64_t* lo, std::size_t n,
                                                    std::uint64_t cube_cells,
                                                    std::uint64_t* run_lo,
                                                    std::uint64_t* run_hi) {
  SUBCOVER_SIMD_DISPATCH(coalesce_cubes_u64(lo, n, cube_cells, run_lo, run_hi));
}

#undef SUBCOVER_SIMD_DISPATCH

}  // namespace subcover::simd
