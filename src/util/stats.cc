#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subcover {

namespace {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  const auto n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

}  // namespace

summary summarize(std::vector<double> values) {
  summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  double total = 0;
  for (const double v : values) total += v;
  s.mean = total / static_cast<double>(s.count);
  double ss = 0;
  for (const double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stdev = s.count > 1 ? std::sqrt(ss / static_cast<double>(s.count - 1)) : 0;
  s.p50 = quantile_sorted(values, 0.50);
  s.p90 = quantile_sorted(values, 0.90);
  s.p99 = quantile_sorted(values, 0.99);
  return s;
}

double quantile(std::vector<double> values, double q) {
  if (values.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0 || q > 1) throw std::invalid_argument("quantile: q outside [0,1]");
  std::sort(values.begin(), values.end());
  return quantile_sorted(values, q);
}

fit_result linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("linear_fit: size mismatch");
  if (xs.size() < 2) throw std::invalid_argument("linear_fit: need at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  fit_result f;
  const double denom = n * sxx - sx * sx;
  if (denom == 0) throw std::invalid_argument("linear_fit: degenerate x values");
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  double ss_res = 0, ss_tot = 0;
  const double ymean = sy / n;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - ymean) * (ys[i] - ymean);
  }
  f.r2 = ss_tot == 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return f;
}

fit_result loglog_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || (i < ys.size() && ys[i] <= 0))
      throw std::invalid_argument("loglog_fit: inputs must be positive");
    lx[i] = std::log2(xs[i]);
  }
  for (std::size_t i = 0; i < ys.size(); ++i) ly[i] = std::log2(ys[i]);
  return linear_fit(lx, ly);
}

void accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  total_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double accumulator::variance() const {
  return n_ < 2 ? 0 : m2_ / static_cast<double>(n_ - 1);
}

double accumulator::stdev() const { return std::sqrt(variance()); }

}  // namespace subcover
