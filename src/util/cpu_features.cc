#include "util/cpu_features.h"

#include <cstdlib>
#include <cstring>

namespace subcover {

namespace {

cpu_features_t probe() {
  cpu_features_t f;
  const char* env = std::getenv("SUBCOVER_FORCE_SCALAR");
  f.force_scalar = env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
  if (f.force_scalar) return f;  // everything stays at the scalar defaults
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  f.bmi2 = __builtin_cpu_supports("bmi2") != 0;
  if (__builtin_cpu_supports("avx2") != 0) {
    f.simd = simd_level::avx2;
  } else if (__builtin_cpu_supports("sse4.2") != 0) {
    f.simd = simd_level::sse42;
  }
#endif
  return f;
}

}  // namespace

const cpu_features_t& cpu_features() {
  static const cpu_features_t f = probe();
  return f;
}

const char* simd_level_name(simd_level level) {
  switch (level) {
    case simd_level::sse42:
      return "sse4.2";
    case simd_level::avx2:
      return "avx2";
    case simd_level::scalar:
      break;
  }
  return "scalar";
}

}  // namespace subcover
