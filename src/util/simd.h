// SIMD dispatch policy for the query hot path.
//
// Two independent switches control the vector kernels of
// util/simd_kernels.h:
//
//   * The process-wide dispatch level (cpu_features().simd): probed once,
//     scalar / SSE4.2 / AVX2, downgraded to scalar by SUBCOVER_FORCE_SCALAR.
//     This is what the arrays (sorted-vector lower bounds, compressed-store
//     envelope scans) follow — they are shared structures with no per-query
//     options of their own.
//
//   * The per-index plan policy (dominance_options::simd, this enum): picks
//     how query_plan's own level-frontier kernels run. `automatic` uses the
//     dispatched kernels; `force_scalar` routes the same call sites through
//     the kernel library's scalar backend (exercising the dispatch plumbing
//     with the reference lanes); `off` bypasses the kernel library entirely
//     and runs the plan's plain-loop implementations — the oracle the other
//     two are pinned byte-identical against
//     (tests/dominance/simd_equivalence_test.cc).
//
// Every setting produces identical results, stop decisions and logical
// query_stats at every key width; only speed moves.
#pragma once

#include "util/cpu_features.h"

namespace subcover {

enum class simd_mode {
  automatic = 0,   // dispatched kernels at the probed CPU tier
  off = 1,         // plain-loop reference implementations, no kernel calls
  force_scalar = 2 // kernel library pinned to its scalar backend
};

[[nodiscard]] inline const char* simd_mode_name(simd_mode mode) {
  switch (mode) {
    case simd_mode::off:
      return "off";
    case simd_mode::force_scalar:
      return "force-scalar";
    case simd_mode::automatic:
      break;
  }
  return "auto";
}

namespace simd {

// The tier the dispatched kernels actually run at in this process.
[[nodiscard]] inline simd_level active_level() { return cpu_features().simd; }

}  // namespace simd

}  // namespace subcover
