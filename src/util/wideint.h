// 512-bit fixed-width unsigned integer.
//
// Space-filling-curve keys in this library live in a universe of d dimensions
// with k bits per coordinate (d*k <= 512), so a key needs up to 512 bits.
// Exact standard-cube counts (products of up to d k-bit side lengths,
// Lemma 3.5 of the paper) need the same width. `u512` provides exactly the
// operations those uses need: modular +/-, increment, shifts, bitwise ops,
// total ordering, multiplication/division by a 64-bit word, and printing.
//
// Semantics mirror built-in unsigned integers: arithmetic wraps mod 2^512.
// The type is a regular value type (copyable, comparable, hashable).
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <string>

namespace subcover {

// 128-bit unsigned integer (GCC/Clang extension), the middle rung of the
// key-width ladder (key_traits.h): universes with 64 < d*k <= 128 run the
// query pipeline on u128 keys instead of 8-word u512s.
__extension__ typedef unsigned __int128 u128;

class u512 {
 public:
  static constexpr int kWords = 8;  // 64-bit words, little-endian
  static constexpr int kBits = kWords * 64;

  constexpr u512() = default;
  // Implicit by design: u512 models an unsigned integer and must mix
  // ergonomically with 64-bit literals (mirrors built-in integer widening).
  constexpr u512(std::uint64_t v) : w_{v} {}  // NOLINT(google-explicit-constructor)

  static constexpr u512 zero() { return u512(); }
  static constexpr u512 one() { return u512(1); }
  // All bits set (2^512 - 1).
  static u512 max();
  // 2^n. Requires 0 <= n < 512.
  static u512 pow2(int n);
  // Low `n` bits set (2^n - 1). Requires 0 <= n <= 512.
  static u512 mask(int n);

  [[nodiscard]] bool is_zero() const;
  // Index of the highest set bit plus one; 0 for zero. (Paper's b(x).)
  [[nodiscard]] int bit_width() const;
  // Number of consecutive zero bits starting at the least significant bit;
  // kBits for zero (mirrors std::countr_zero).
  [[nodiscard]] int countr_zero() const;
  // Number of consecutive zero bits starting at the most significant bit;
  // kBits for zero (mirrors std::countl_zero).
  [[nodiscard]] int countl_zero() const { return kBits - bit_width(); }
  // Largest power of two <= the value; 0 for zero (mirrors std::bit_floor).
  [[nodiscard]] u512 bit_floor() const;
  [[nodiscard]] int popcount() const;
  [[nodiscard]] bool bit(int i) const;
  void set_bit(int i, bool value = true);

  // Truncating access to the low 64 bits.
  [[nodiscard]] std::uint64_t low64() const { return w_[0]; }
  [[nodiscard]] std::uint64_t word(int i) const { return w_[static_cast<std::size_t>(i)]; }
  // Lossy conversion (exact for values up to 2^53).
  [[nodiscard]] double to_double() const;
  [[nodiscard]] long double to_long_double() const;

  [[nodiscard]] std::string to_hex() const;   // minimal hex, no prefix
  [[nodiscard]] std::string to_string() const;  // decimal

  u512& operator+=(const u512& o);
  u512& operator-=(const u512& o);
  u512& operator++();
  u512 operator++(int);
  u512& operator--();
  u512 operator--(int);

  u512& operator<<=(int n);
  u512& operator>>=(int n);
  u512& operator&=(const u512& o);
  u512& operator|=(const u512& o);
  u512& operator^=(const u512& o);

  // Multiplication by a 64-bit word, wrapping mod 2^512.
  [[nodiscard]] u512 mul_u64(std::uint64_t m) const;
  // Division by a nonzero 64-bit word; remainder optionally returned.
  // Throws std::invalid_argument if divisor == 0.
  [[nodiscard]] u512 div_u64(std::uint64_t divisor, std::uint64_t* remainder = nullptr) const;

  friend u512 operator+(u512 a, const u512& b) { return a += b; }
  friend u512 operator-(u512 a, const u512& b) { return a -= b; }
  friend u512 operator<<(u512 a, int n) { return a <<= n; }
  friend u512 operator>>(u512 a, int n) { return a >>= n; }
  friend u512 operator&(u512 a, const u512& b) { return a &= b; }
  friend u512 operator|(u512 a, const u512& b) { return a |= b; }
  friend u512 operator^(u512 a, const u512& b) { return a ^= b; }
  friend u512 operator~(u512 a) {
    for (auto& w : a.w_) w = ~w;
    return a;
  }

  friend std::strong_ordering operator<=>(const u512& a, const u512& b) {
    for (int i = kWords - 1; i >= 0; --i) {
      const auto ai = a.w_[static_cast<std::size_t>(i)];
      const auto bi = b.w_[static_cast<std::size_t>(i)];
      if (ai != bi) return ai < bi ? std::strong_ordering::less : std::strong_ordering::greater;
    }
    return std::strong_ordering::equal;
  }
  friend bool operator==(const u512& a, const u512& b) = default;

  [[nodiscard]] std::size_t hash() const;

 private:
  std::array<std::uint64_t, kWords> w_{};  // w_[0] is least significant
};

}  // namespace subcover

template <>
struct std::hash<subcover::u512> {
  std::size_t operator()(const subcover::u512& v) const noexcept { return v.hash(); }
};
