// Deterministic pseudo-random generation for workloads, tests, and benches.
//
// `rng` is xoshiro256** (Blackman & Vigna) seeded via splitmix64 — fast,
// high-quality, and reproducible across platforms (unlike std::mt19937
// distributions, whose results are implementation-defined).
// `zipf_sampler` draws from a Zipf(s) distribution over {0..n-1} via a
// precomputed CDF and binary search, used for skewed subscription workloads.
#pragma once

#include <cstdint>
#include <vector>

namespace subcover {

class rng {
 public:
  explicit rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  // Uniform 64-bit value.
  std::uint64_t next();
  // Uniform integer in the closed interval [lo, hi]. Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);
  // Uniform double in [0, 1).
  double uniform01();
  // Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);
  // Uniform element index for a container of the given size. Requires size > 0.
  std::size_t index(std::size_t size);

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
};

class zipf_sampler {
 public:
  // Zipf over {0, ..., n-1} with exponent s >= 0 (s = 0 is uniform).
  // Throws std::invalid_argument for n == 0 or s < 0.
  zipf_sampler(std::size_t n, double s);

  std::size_t sample(rng& gen) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace subcover
