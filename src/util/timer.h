// Wall-clock stopwatch used by the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace subcover {

class stopwatch {
 public:
  stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - start_).count());
  }
  [[nodiscard]] double elapsed_us() const { return static_cast<double>(elapsed_ns()) / 1e3; }
  [[nodiscard]] double elapsed_ms() const { return static_cast<double>(elapsed_ns()) / 1e6; }
  [[nodiscard]] double elapsed_s() const { return static_cast<double>(elapsed_ns()) / 1e9; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace subcover
