// key_traits — one bit-manipulation vocabulary for every SFC key width.
//
// The query pipeline (curve -> cube_stream/run_stream -> sfc_array ->
// query_plan) is templated on the key type `Key`:
//
//   std::uint64_t   d*k <= 64    one machine word
//   u128            d*k <= 128   two machine words (unsigned __int128)
//   u512            d*k <= 512   eight words, the paper's full generality
//
// select_key_width() picks the narrowest width that fits a universe; the
// value-level enum `key_width` names the choice so construction-time
// dispatch (dominance_index, benches) can switch on it. key_traits<Key>
// papers over the differences between the builtin integers and the u512
// class type: masks, powers of two, bit scans, widening to u512 (exact) and
// truncation back. Everything is constexpr-friendly and header-only so the
// narrow instantiations compile to straight-line word ops.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "util/wideint.h"

namespace subcover {

// The key widths the pipeline instantiates. `automatic` (the default in
// dominance_options) selects by universe at construction time.
enum class key_width { automatic, w64, w128, w512 };

// Narrowest width whose keys hold `key_bits` bits (d*k of the universe).
inline key_width select_key_width(int key_bits) {
  if (key_bits <= 64) return key_width::w64;
  if (key_bits <= 128) return key_width::w128;
  return key_width::w512;
}

inline const char* key_width_name(key_width w) {
  switch (w) {
    case key_width::automatic:
      return "auto";
    case key_width::w64:
      return "u64";
    case key_width::w128:
      return "u128";
    case key_width::w512:
      return "u512";
  }
  return "unknown";
}

namespace detail {

// Shared implementation for the builtin unsigned key types (uint64_t, u128).
template <class K>
struct builtin_key_traits {
  using key_type = K;
  static constexpr int kBits = static_cast<int>(sizeof(K) * 8);

  static constexpr K zero() { return K{0}; }
  static constexpr K one() { return K{1}; }
  static constexpr K max() { return ~K{0}; }
  // 2^n. Requires 0 <= n < kBits.
  static constexpr K pow2(int n) { return K{1} << n; }
  // Low n bits set. Requires 0 <= n <= kBits (n == kBits yields all ones,
  // where the plain shift would be UB).
  static constexpr K mask(int n) { return n >= kBits ? max() : (K{1} << n) - 1; }
  static constexpr bool is_zero(const K& v) { return v == 0; }
  static constexpr bool test_bit(const K& v, int i) { return ((v >> i) & 1U) != 0; }
  static constexpr void set_bit(K& v, int i) { v |= K{1} << i; }
  static constexpr std::uint64_t low64(const K& v) { return static_cast<std::uint64_t>(v); }

  static constexpr int bit_width(const K& v) {
    if constexpr (sizeof(K) <= 8) {
      return std::bit_width(static_cast<std::uint64_t>(v));
    } else {
      const auto hi = static_cast<std::uint64_t>(v >> 64);
      return hi != 0 ? 64 + std::bit_width(hi)
                     : std::bit_width(static_cast<std::uint64_t>(v));
    }
  }
  static constexpr int countr_zero(const K& v) {
    if constexpr (sizeof(K) <= 8) {
      return std::countr_zero(static_cast<std::uint64_t>(v));
    } else {
      const auto lo = static_cast<std::uint64_t>(v);
      if (lo != 0) return std::countr_zero(lo);
      const auto hi = static_cast<std::uint64_t>(v >> 64);
      return hi != 0 ? 64 + std::countr_zero(hi) : kBits;
    }
  }
  static constexpr int countl_zero(const K& v) { return kBits - bit_width(v); }
  static constexpr K bit_floor(const K& v) {
    return v == 0 ? K{0} : pow2(bit_width(v) - 1);
  }

  // Exact widening to the reference width; truncate() takes the low bits.
  static u512 widen(const K& v) {
    if constexpr (sizeof(K) <= 8) {
      return u512(static_cast<std::uint64_t>(v));
    } else {
      return (u512(static_cast<std::uint64_t>(v >> 64)) << 64) |
             u512(static_cast<std::uint64_t>(v));
    }
  }
  static K truncate(const u512& v) {
    if constexpr (sizeof(K) <= 8) {
      return v.low64();
    } else {
      return (K{v.word(1)} << 64) | K{v.word(0)};
    }
  }

  static long double to_long_double(const K& v) {
    if constexpr (sizeof(K) <= 8) {
      return static_cast<long double>(v);
    } else {
      return static_cast<long double>(static_cast<std::uint64_t>(v >> 64)) *
                 18446744073709551616.0L /* 2^64 */ +
             static_cast<long double>(static_cast<std::uint64_t>(v));
    }
  }
  static std::string to_string(const K& v) {
    if constexpr (sizeof(K) <= 8) {
      return std::to_string(static_cast<std::uint64_t>(v));
    } else {
      if (v == 0) return "0";
      std::string digits;
      K x = v;
      while (x != 0) {
        digits.push_back(static_cast<char>('0' + static_cast<int>(x % 10)));
        x /= 10;
      }
      return {digits.rbegin(), digits.rend()};
    }
  }
};

}  // namespace detail

template <class K>
struct key_traits;

template <>
struct key_traits<std::uint64_t> : detail::builtin_key_traits<std::uint64_t> {};

template <>
struct key_traits<u128> : detail::builtin_key_traits<u128> {};

template <>
struct key_traits<u512> {
  using key_type = u512;
  static constexpr int kBits = u512::kBits;

  static constexpr u512 zero() { return u512::zero(); }
  static constexpr u512 one() { return u512::one(); }
  static u512 max() { return u512::max(); }
  static u512 pow2(int n) { return u512::pow2(n); }
  static u512 mask(int n) { return u512::mask(n); }
  static bool is_zero(const u512& v) { return v.is_zero(); }
  static bool test_bit(const u512& v, int i) { return v.bit(i); }
  static void set_bit(u512& v, int i) { v.set_bit(i); }
  static std::uint64_t low64(const u512& v) { return v.low64(); }
  static int bit_width(const u512& v) { return v.bit_width(); }
  static int countr_zero(const u512& v) { return v.countr_zero(); }
  static int countl_zero(const u512& v) { return v.countl_zero(); }
  static u512 bit_floor(const u512& v) { return v.bit_floor(); }
  static u512 widen(const u512& v) { return v; }
  static u512 truncate(const u512& v) { return v; }
  static long double to_long_double(const u512& v) { return v.to_long_double(); }
  static std::string to_string(const u512& v) { return v.to_string(); }
};

}  // namespace subcover
