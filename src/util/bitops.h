// Bit-level operators used throughout the paper's algorithms (Sections 3-5).
//
// The paper defines, for a positive integer x:
//   b(x)    - the number of bits in the binary representation of x
//             (most significant bit is 1); e.g. b(9) = 4.
//   t(x,m)  - retain the m most significant bits of x, zero the rest;
//             e.g. t(0b1011, 2) = 0b1010.  For m >= b(x), t(x,m) = x.
//   S_i(x)  - keep only bits at positions >= i (paper Section 3.2);
//             e.g. S_1(0b1011) = 0b1010.
// All of these are implemented here for 64-bit side lengths; key-width
// (512-bit) variants are not needed because side lengths are at most 2^k
// with k <= 30.
#pragma once

#include <bit>
#include <cstdint>

namespace subcover {

// b(x): number of significant bits; b(0) = 0, b(9) = 4.
constexpr int bit_length(std::uint64_t x) { return 64 - std::countl_zero(x); }

// Bit j (0-based from least significant) of x.
constexpr bool bit_at(std::uint64_t x, int j) { return ((x >> j) & 1U) != 0; }

// S_i(x): zero out all bits below position i.
constexpr std::uint64_t keep_bits_from(std::uint64_t x, int i) {
  return i >= 64 ? 0 : (x >> i) << i;
}

// t(x,m): retain the m most significant bits of x (m >= 1); the rest become 0.
// For m >= b(x) the value is unchanged. Requires m >= 1 when x > 0.
constexpr std::uint64_t truncate_to_msb(std::uint64_t x, int m) {
  const int b = bit_length(x);
  if (m >= b) return x;
  return keep_bits_from(x, b - m);
}

// Round x down to the largest power of two <= x. Requires x > 0.
constexpr std::uint64_t floor_pow2(std::uint64_t x) { return std::uint64_t{1} << (bit_length(x) - 1); }

// True if x is a power of two (x > 0).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Ceil of log2(x) for x >= 1.
constexpr int ceil_log2(std::uint64_t x) { return x <= 1 ? 0 : bit_length(x - 1); }

// Number of trailing zero bits; 64 for x == 0.
constexpr int trailing_zeros(std::uint64_t x) { return std::countr_zero(x); }

}  // namespace subcover
