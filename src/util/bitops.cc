#include "util/bitops.h"

// All operations are constexpr and defined in the header; this translation
// unit exists so the module has a home for future non-inline additions and to
// give the static library at least one object file for the component.
namespace subcover {}
