// cpu_features — the single cached CPUID probe behind every runtime-dispatched
// kernel in the tree (BMI2 interleave in sfc/interleave.h, the SIMD kernel
// ladder in util/simd_kernels.h).
//
// One probe, one escape hatch: the feature set is read exactly once (first
// call), and the SUBCOVER_FORCE_SCALAR environment variable — read at the
// same moment — downgrades every dispatched kernel in the process to its
// portable scalar reference. That replaces the per-TU `static const bool`
// pattern the BMI2 dispatch used to carry: one place to probe, one place to
// force the fallback paths in CI, and a perfectly predicted branch after the
// first call either way.
//
// Dispatched kernels are byte-identical to their scalar references by
// contract (pinned by tests/util/simd_kernels_test.cc and the interleave
// equivalence tests), so the hatch changes speed, never answers.
#pragma once

namespace subcover {

// Instruction-set tiers of the SIMD kernel ladder (util/simd_kernels.h).
// Ordered: a CPU at tier T runs every kernel of tiers <= T.
enum class simd_level { scalar = 0, sse42 = 1, avx2 = 2 };

[[nodiscard]] const char* simd_level_name(simd_level level);

struct cpu_features_t {
  // BMI2 pdep/pext (the interleave kernels).
  bool bmi2 = false;
  // Best available kernel tier for the lane kernels.
  simd_level simd = simd_level::scalar;
  // SUBCOVER_FORCE_SCALAR was set (non-empty, not "0") when the process
  // first probed; bmi2/simd are already downgraded accordingly.
  bool force_scalar = false;
};

// The cached probe. Thread-safe (C++ static initialization); never changes
// after the first call.
[[nodiscard]] const cpu_features_t& cpu_features();

}  // namespace subcover
