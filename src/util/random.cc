#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subcover {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

rng::rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("rng::uniform: empty range");
  const std::uint64_t span = hi - lo;  // inclusive width minus one
  if (span == ~std::uint64_t{0}) return next();
  // Rejection sampling for unbiased results.
  const std::uint64_t bound = span + 1;
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound + 1) % bound;
  std::uint64_t v = next();
  while (v > limit) v = next();
  return lo + v % bound;
}

double rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool rng::bernoulli(double p) { return uniform01() < p; }

std::size_t rng::index(std::size_t size) {
  if (size == 0) throw std::invalid_argument("rng::index: empty container");
  return static_cast<std::size_t>(uniform(0, size - 1));
}

zipf_sampler::zipf_sampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf_sampler: n must be positive");
  if (s < 0) throw std::invalid_argument("zipf_sampler: exponent must be non-negative");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated floating-point error
}

std::size_t zipf_sampler::sample(rng& gen) const {
  const double u = gen.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace subcover
