// Minimal command-line flag parsing for examples and bench binaries.
//
// All binaries run fine with zero arguments (defaults reproduce the paper's
// configurations); flags let a user override sweep parameters:
//   ./fig9_scaling_n --max-subs=200000 --seed=7 --csv
// Syntax: --name=value or bare --name (boolean true). Unknown flags throw,
// so typos are caught instead of silently ignored.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace subcover {

class cli_flags {
 public:
  // Parses argv; throws std::invalid_argument on malformed or (after the
  // accessors are used with `finish`) unknown flags.
  cli_flags(int argc, const char* const* argv);

  // Typed accessors; each registers the flag as known and returns the parsed
  // value or the default if absent. Throw std::invalid_argument on bad values.
  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  bool get_bool(const std::string& name, bool def);
  std::string get_string(const std::string& name, const std::string& def);

  // Call after all accessors: throws if the command line contained flags that
  // no accessor asked about.
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> known_;
};

}  // namespace subcover
