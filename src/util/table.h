// ASCII table rendering for the benchmark harness.
//
// Every bench binary prints self-describing tables that mirror the figures
// and claims of the paper; this helper keeps their formatting uniform.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace subcover {

class ascii_table {
 public:
  explicit ascii_table(std::vector<std::string> headers);

  // Appends a row; must have exactly as many cells as there are headers
  // (throws std::invalid_argument otherwise).
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers for table cells.
std::string fmt_double(double v, int precision = 3);
std::string fmt_sci(double v, int precision = 2);   // scientific notation
std::string fmt_u64(std::uint64_t v);               // thousands separators
std::string fmt_percent(double fraction, int precision = 2);
std::string fmt_ratio(double v, int precision = 2);  // e.g. "12.3x"

}  // namespace subcover
