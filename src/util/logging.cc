#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace subcover {

namespace {

log_level level_from_env() {
  const char* env = std::getenv("SUBCOVER_LOG");
  if (env == nullptr) return log_level::warn;
  if (std::strcmp(env, "debug") == 0) return log_level::debug;
  if (std::strcmp(env, "info") == 0) return log_level::info;
  if (std::strcmp(env, "warn") == 0) return log_level::warn;
  if (std::strcmp(env, "error") == 0) return log_level::error;
  if (std::strcmp(env, "off") == 0) return log_level::off;
  return log_level::warn;
}

std::atomic<log_level>& level_storage() {
  static std::atomic<log_level> level{level_from_env()};
  return level;
}

const char* level_name(log_level level) {
  switch (level) {
    case log_level::debug:
      return "DEBUG";
    case log_level::info:
      return "INFO";
    case log_level::warn:
      return "WARN";
    case log_level::error:
      return "ERROR";
    case log_level::off:
      return "OFF";
  }
  return "?";
}

}  // namespace

log_level current_log_level() { return level_storage().load(std::memory_order_relaxed); }

void set_log_level(log_level level) { level_storage().store(level, std::memory_order_relaxed); }

bool log_enabled(log_level level) {
  return level >= current_log_level() && level != log_level::off;
}

void log_message(log_level level, const std::string& message) {
  if (!log_enabled(level)) return;
  std::cerr << "[subcover " << level_name(level) << "] " << message << '\n';
}

}  // namespace subcover
