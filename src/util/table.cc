#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace subcover {

ascii_table::ascii_table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("ascii_table: need at least one column");
}

void ascii_table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("ascii_table::add_row: cell count does not match headers");
  rows_.push_back(std::move(cells));
}

std::string ascii_table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit_sep = [&] {
    os << '+';
    for (const auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string ascii_table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void ascii_table::print(std::ostream& os) const { os << to_string(); }

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_ratio(double v, int precision) { return fmt_double(v, precision) + "x"; }

}  // namespace subcover
