// Minimal leveled logging to stderr.
//
// The library itself never logs on hot paths; logging is for the broker
// simulator's trace mode and for harness diagnostics. The level is read once
// from the SUBCOVER_LOG environment variable ("debug", "info", "warn",
// "error", "off"; default "warn").
#pragma once

#include <sstream>
#include <string>

namespace subcover {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

log_level current_log_level();
void set_log_level(log_level level);
bool log_enabled(log_level level);
void log_message(log_level level, const std::string& message);

namespace detail {
class log_line {
 public:
  explicit log_line(log_level level) : level_(level) {}
  ~log_line() { log_message(level_, os_.str()); }
  log_line(const log_line&) = delete;
  log_line& operator=(const log_line&) = delete;
  template <typename T>
  log_line& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  log_level level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace subcover

#define SUBCOVER_LOG(level)                          \
  if (!::subcover::log_enabled(level)) {             \
  } else                                             \
    ::subcover::detail::log_line(level)

#define SUBCOVER_LOG_DEBUG SUBCOVER_LOG(::subcover::log_level::debug)
#define SUBCOVER_LOG_INFO SUBCOVER_LOG(::subcover::log_level::info)
#define SUBCOVER_LOG_WARN SUBCOVER_LOG(::subcover::log_level::warn)
#define SUBCOVER_LOG_ERROR SUBCOVER_LOG(::subcover::log_level::error)
